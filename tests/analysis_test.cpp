// Post-hoc schedule analytics tests.
//
// The properties at the heart of this file, checked across 50 seeds and all
// six scheduler configurations:
//   * the critical path is a contiguous chain of schedule segments whose
//     total length equals the makespan exactly;
//   * the per-task wait decomposition dep + link + pe equals start − release
//     exactly, with every component non-negative on scheduler output;
//   * the energy totals reconcile BIT-exactly with the scheduler-reported
//     EnergyBreakdown (same accumulation loop), and the per-link / per-hop /
//     injection decompositions sum back to the communication total;
//   * every identified blocker really holds a shared route link until the
//     instant the waiting transaction starts, and cross-references a
//     recorded placement decision when a provenance stream is attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/analysis/analysis.hpp"
#include "src/audit/decision_log.hpp"
#include "src/baseline/dls.hpp"
#include "src/baseline/edf.hpp"
#include "src/baseline/greedy_energy.hpp"
#include "src/baseline/map_then_schedule.hpp"
#include "src/core/eas.hpp"
#include "src/gen/tgff.hpp"
#include "src/obs/metrics.hpp"

namespace noceas {
namespace {

struct Instance {
  TaskGraph g;
  Platform p;
};

/// Same instance family as the audit replay property: 2-3x3 heterogeneous
/// mesh, 26 tasks / 52 edges, odd seeds with tight deadlines so repair and
/// budget-tightening attempts shape the schedules.
Instance make_instance(std::uint64_t seed) {
  const int rows = 2 + static_cast<int>(seed % 2);
  const int cols = 3;
  const PeCatalog catalog = make_hetero_catalog(rows, cols, seed * 31 + 5);
  TgffParams params;
  params.num_tasks = 26;
  params.num_edges = 52;
  params.avg_layer_width = 5.0;
  params.seed = seed * 977 + 11;
  if (seed % 2 == 1) {
    params.deadline_tightness_min = 0.8;
    params.deadline_tightness_max = 1.1;
    params.interior_deadline_fraction = 0.15;
  }
  return {generate_tgff_like(params, catalog), make_platform_for(catalog, rows, cols)};
}

const char* const kSchedulers[] = {"eas", "eas-base", "edf", "dls", "greedy", "map"};

struct Run {
  Schedule schedule;
  EnergyBreakdown energy;  ///< as reported by the scheduler itself
};

Run run_scheduler(const std::string& which, const TaskGraph& g, const Platform& p,
                  audit::DecisionLog* log) {
  if (which == "eas" || which == "eas-base") {
    EasOptions options;
    options.repair = which == "eas";
    options.decisions = log;
    const EasResult r = schedule_eas(g, p, options);
    return {r.schedule, r.energy};
  }
  BaselineObs obs;
  obs.decisions = log;
  if (which == "edf") {
    const BaselineResult r = schedule_edf(g, p, obs);
    return {r.schedule, r.energy};
  }
  if (which == "dls") {
    const BaselineResult r = schedule_dls(g, p, obs);
    return {r.schedule, r.energy};
  }
  if (which == "greedy") {
    const BaselineResult r = schedule_greedy_energy(g, p, obs);
    return {r.schedule, r.energy};
  }
  NOCEAS_REQUIRE(which == "map", "unknown scheduler " << which);
  MapScheduleOptions options;
  options.obs = obs;
  const MapScheduleResult r = schedule_map_then_list(g, p, options);
  return {r.result.schedule, r.result.energy};
}

/// All analyzer invariants on one (instance, scheduler) pair.
void check_report(const std::string& which, const Instance& in, std::uint64_t seed) {
  audit::DecisionLog log;
  const Run run = run_scheduler(which, in.g, in.p, &log);
  const Schedule& s = run.schedule;

  analysis::AnalyzeOptions options;
  options.label = which;
  options.decisions = &log.stream();
  const analysis::Report r = analysis::analyze_schedule(in.g, in.p, s, options);
  const std::string ctx = which + " seed " + std::to_string(seed);

  // -- critical path: contiguous chain, length provably equals makespan ------
  ASSERT_TRUE(r.critical_path.complete) << ctx;
  ASSERT_FALSE(r.critical_path.segments.empty()) << ctx;
  EXPECT_EQ(r.critical_path.head_start, 0) << ctx;
  EXPECT_EQ(r.critical_path.length, r.makespan) << ctx;
  EXPECT_EQ(r.critical_path.segments.back().finish, r.makespan) << ctx;
  for (std::size_t i = 1; i < r.critical_path.segments.size(); ++i) {
    EXPECT_EQ(r.critical_path.segments[i - 1].finish, r.critical_path.segments[i].start)
        << ctx << " segment " << i << " is not contiguous";
  }

  // -- exact wait decomposition ----------------------------------------------
  Time dep = 0, link = 0, pe = 0;
  for (TaskId t : in.g.all_tasks()) {
    const analysis::TaskAttribution& a = r.tasks[t.index()];
    EXPECT_EQ(a.dep_wait + a.link_wait + a.pe_wait, a.start - a.release)
        << ctx << " task " << t.value;
    EXPECT_GE(a.dep_wait, 0) << ctx << " task " << t.value;
    EXPECT_GE(a.link_wait, 0) << ctx << " task " << t.value;
    EXPECT_GE(a.pe_wait, 0) << ctx << " task " << t.value;
    dep += a.dep_wait;
    link += a.link_wait;
    pe += a.pe_wait;

    // Blockers: the named transaction really holds a shared route link until
    // the instant the waiting one starts, and names a recorded decision.
    for (const analysis::BlockerRecord& b : a.blockers) {
      EXPECT_EQ(s.at(EdgeId{b.edge}).start - s.at(in.g.edge(EdgeId{b.edge}).src).finish, b.wait)
          << ctx;
      if (b.blocking_edge < 0) continue;
      const CommPlacement& blocking = s.at(EdgeId{b.blocking_edge});
      EXPECT_EQ(blocking.arrival(), s.at(EdgeId{b.edge}).start) << ctx;
      const auto& route = in.p.route(blocking.src_pe, blocking.dst_pe);
      EXPECT_NE(std::find(route.begin(), route.end(), LinkId{b.link}), route.end()) << ctx;
      EXPECT_EQ(b.blocking_task, in.g.edge(EdgeId{b.blocking_edge}).dst.value) << ctx;
      EXPECT_GE(b.decision_seq, 0) << ctx << " (stream attached, seq must resolve)";
    }

    // Slack accounting is internally consistent by construction.
    if (a.has_budget) {
      EXPECT_EQ(a.residual_slack, a.granted_slack - a.consumed_slack) << ctx;
    }
  }
  EXPECT_EQ(r.total_dep_wait, dep) << ctx;
  EXPECT_EQ(r.total_link_wait, link) << ctx;
  EXPECT_EQ(r.total_pe_wait, pe) << ctx;

  // -- bit-exact energy reconciliation ---------------------------------------
  EXPECT_EQ(r.energy.totals.computation, run.energy.computation) << ctx;
  EXPECT_EQ(r.energy.totals.communication, run.energy.communication) << ctx;
  EXPECT_EQ(r.energy.totals.total(), run.energy.total()) << ctx;

  // The decompositions are FP re-orderings of the same Eq. 2 terms: they
  // must sum back to the communication total to tight tolerance.
  double by_link = 0.0, by_hop = 0.0, per_edge = 0.0;
  for (const analysis::LinkEnergyRow& row : r.energy.per_link) {
    by_link += row.link_energy + row.switch_energy;
  }
  for (const analysis::InjectionEnergyRow& row : r.energy.injection) {
    by_link += row.switch_energy;
  }
  for (const analysis::HopEnergyRow& row : r.energy.per_hop) by_hop += row.energy;
  for (const Energy e : r.energy.per_edge) per_edge += e;
  const double tol = 1e-9 * std::max(1.0, run.energy.communication);
  EXPECT_NEAR(by_link, run.energy.communication, tol) << ctx;
  EXPECT_NEAR(by_hop, run.energy.communication, tol) << ctx;
  EXPECT_NEAR(per_edge, run.energy.communication, tol) << ctx;

  // -- utilization timelines reconcile with the shared obs code path --------
  for (const analysis::PeUsage& u : r.pes) {
    EXPECT_NEAR(u.utilization,
                static_cast<double>(u.busy) / static_cast<double>(std::max<Time>(1, r.makespan)),
                1e-12)
        << ctx;
    EXPECT_EQ(u.busy + u.idle_time, r.makespan) << ctx << " PE " << u.pe;
  }
  for (const analysis::LinkUsage& u : r.links) {
    EXPECT_GT(u.transactions, 0u) << ctx;
    EXPECT_EQ(u.busy + u.idle_time, r.makespan) << ctx << " link " << u.link;
  }
}

// ---- 50-seed, all-scheduler property ---------------------------------------

TEST(Analysis, FiftySeedsAllSchedulersInvariantsHold) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Instance in = make_instance(seed);
    for (const char* which : kSchedulers) {
      check_report(which, in, seed);
    }
  }
}

// ---- handcrafted contention fixture ----------------------------------------

/// Two producers on PE 0 feeding one consumer on PE 1 over the same link;
/// edge 1 is ready at t=20 but the link is held by edge 0 until t=30.
struct ContendedFixture {
  Platform p = make_mesh_platform(2, 2, {"A", "B", "C", "D"}, 10.0);
  TaskGraph g{4};
  Schedule s;

  ContendedFixture() {
    g.add_task("a", {10, 10, 10, 10}, {1, 2, 3, 4});
    g.add_task("b", {10, 10, 10, 10}, {1, 2, 3, 4});
    g.add_task("c", {10, 10, 10, 10}, {1, 2, 3, 4}, 60);
    g.add_edge(TaskId{0}, TaskId{2}, 200);
    g.add_edge(TaskId{1}, TaskId{2}, 100);
    s = Schedule(3, 2);
    s.tasks[0] = {PeId{0}, 0, 10};
    s.tasks[1] = {PeId{0}, 10, 20};
    s.tasks[2] = {PeId{1}, 40, 50};
    s.comms[0] = {PeId{0}, PeId{1}, 10, 20};
    s.comms[1] = {PeId{0}, PeId{1}, 30, 10};
  }
};

TEST(Analysis, ContendedFixtureAttribution) {
  ContendedFixture f;
  const analysis::Report r = analysis::analyze_schedule(f.g, f.p, f.s);

  EXPECT_EQ(r.makespan, 50);
  ASSERT_TRUE(r.critical_path.complete);
  EXPECT_EQ(r.critical_path.length, 50);
  // a -> edge0 -> (link busy) edge1 -> c: the walk must pass the blocking arc.
  bool saw_link_busy = false;
  for (const analysis::PathSegment& seg : r.critical_path.segments) {
    saw_link_busy |= seg.reason == analysis::PathSegment::Reason::LinkBusy;
  }
  EXPECT_TRUE(saw_link_busy);

  // Task c: release 0, start 40 = 30 dep (uncontended arrival) + 10 link.
  const analysis::TaskAttribution& c = r.tasks[2];
  EXPECT_EQ(c.dep_ready, 30);
  EXPECT_EQ(c.data_ready, 40);
  EXPECT_EQ(c.dep_wait, 30);
  EXPECT_EQ(c.link_wait, 10);
  EXPECT_EQ(c.pe_wait, 0);
  ASSERT_EQ(c.blockers.size(), 1u);
  EXPECT_EQ(c.blockers[0].edge, 1);
  EXPECT_EQ(c.blockers[0].blocking_edge, 0);
  EXPECT_EQ(c.blockers[0].blocking_task, 2);
  EXPECT_EQ(c.blockers[0].wait, 10);
  EXPECT_EQ(c.blockers[0].decision_seq, -1);  // no stream attached

  // One contention window [20, 30) on the shared link.
  ASSERT_EQ(r.links.size(), 1u);
  ASSERT_EQ(r.links[0].contention_windows.size(), 1u);
  EXPECT_EQ(r.links[0].contention_windows[0], (Interval{20, 30}));
  EXPECT_EQ(r.links[0].contention_time, 10);

  // Eq. 2 on the defaults: bit_energy(2 hops) = 2*e_sbit + 1*e_lbit = 0.0065.
  EXPECT_DOUBLE_EQ(r.energy.totals.communication, 300 * 0.0065);
  EXPECT_DOUBLE_EQ(r.energy.totals.computation, 1.0 + 1.0 + 2.0);
}

TEST(Analysis, EmptyScheduleAnalyzes) {
  const Platform p = make_mesh_platform(2, 2, {"A", "B", "C", "D"}, 10.0);
  const TaskGraph g{4};
  const analysis::Report r = analysis::analyze_schedule(g, p, Schedule(0, 0));
  EXPECT_EQ(r.makespan, 0);
  EXPECT_TRUE(r.critical_path.complete);
  EXPECT_TRUE(r.critical_path.segments.empty());
  EXPECT_TRUE(r.links.empty());
  EXPECT_EQ(r.energy.totals.total(), 0.0);
}

TEST(Analysis, DegenerateGapScheduleReportsIncompletePath) {
  // A handcrafted schedule where the last task starts out of thin air (no
  // tight predecessor): the walk must terminate with complete == false
  // instead of hanging.
  ContendedFixture f;
  f.s.tasks[2] = {PeId{1}, 45, 55};  // 5 ticks after its data arrived, PE idle
  const analysis::CriticalPath path = analysis::critical_path(f.g, f.p, f.s);
  EXPECT_FALSE(path.complete);
  EXPECT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.front().reason, analysis::PathSegment::Reason::Gap);
}

TEST(Analysis, MetricsExportRegistersGaugesAndHistograms) {
  ContendedFixture f;
  obs::Registry registry;
  analysis::AnalyzeOptions options;
  options.metrics = &registry;
  (void)analyze_schedule(f.g, f.p, f.s, options);
  const auto values = registry.values();
  EXPECT_EQ(values.at("analysis.makespan"), 50.0);
  EXPECT_EQ(values.at("analysis.critical_path.length"), 50.0);
  EXPECT_EQ(values.at("analysis.wait.link"), 10.0);
  EXPECT_EQ(values.at("analysis.contention.time"), 10.0);
  EXPECT_EQ(values.at("analysis.blockers"), 1.0);
  EXPECT_GT(values.at("analysis.pe.idle_gap.count"), 0.0);
}

TEST(Analysis, LinearBucketsShape) {
  const auto b = obs::linear_buckets(0.1, 0.1, 9);
  ASSERT_EQ(b.size(), 9u);
  EXPECT_DOUBLE_EQ(b.front(), 0.1);
  EXPECT_DOUBLE_EQ(b.back(), 0.9);
  EXPECT_THROW((void)obs::linear_buckets(0.0, 0.0, 3), Error);
}

// ---- golden JSON -----------------------------------------------------------

TEST(Analysis, GoldenJson) {
  ContendedFixture f;
  analysis::AnalyzeOptions options;
  options.label = "golden";
  const analysis::Report r = analysis::analyze_schedule(f.g, f.p, f.s, options);
  std::ostringstream os;
  write_analysis_json(os, r);
  const std::string json = os.str();
  // Structural goldens: stable substrings of the v1 schema that downstream
  // tooling (CI smoke stage, bench_compare) keys on.
  EXPECT_NE(json.find("\"schema\":\"noceas.analysis.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"golden\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan\":50"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\":{\"complete\":true,\"head_start\":0,\"length\":50"),
            std::string::npos);
  // a: no waits; b: PE busy until 10; c: 30 dep (uncontended) + 10 link.
  EXPECT_NE(json.find("\"waits\":{\"dep\":30,\"link\":10,\"pe\":10}"), std::string::npos);
  EXPECT_NE(json.find("\"blockers\":[{\"edge\":1,\"wait\":10,\"link\":"), std::string::npos);
  EXPECT_NE(json.find("\"contention_windows\":[[20,30]]"), std::string::npos);
  EXPECT_NE(json.find("\"communication\":1.95"), std::string::npos);
  // The hop energy is a double accumulation (200 + 100 bits at 0.0065/bit), so
  // match only the prefix of the shortest-round-trip rendering.
  EXPECT_NE(json.find("\"per_hop\":[{\"hops\":2,\"packets\":2,\"energy\":1.95"),
            std::string::npos);
}

}  // namespace
}  // namespace noceas
