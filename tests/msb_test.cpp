// Unit tests for the multimedia system benchmarks (Sec. 6.2 workloads).
#include <gtest/gtest.h>

#include "src/ctg/dag_algos.hpp"
#include "src/msb/msb.hpp"

namespace noceas {
namespace {

TEST(Msb, TaskCountsMatchPaper) {
  const PeCatalog c2 = msb_catalog_2x2();
  const PeCatalog c3 = msb_catalog_3x3();
  EXPECT_EQ(make_av_encoder(clip_foreman(), c2).num_tasks(), 24u);
  EXPECT_EQ(make_av_decoder(clip_foreman(), c2).num_tasks(), 16u);
  EXPECT_EQ(make_av_encdec(clip_foreman(), c3).num_tasks(), 40u);
}

TEST(Msb, PlatformsMatchPaper) {
  EXPECT_EQ(msb_platform_2x2().num_pes(), 4u);
  EXPECT_EQ(msb_platform_3x3().num_pes(), 9u);
}

TEST(Msb, GraphsAreValidDags) {
  const PeCatalog c3 = msb_catalog_3x3();
  for (const ClipProfile& clip : all_clips()) {
    EXPECT_NO_THROW(make_av_encdec(clip, c3).validate());
  }
}

TEST(Msb, DeadlinesFollowFrameRates) {
  const PeCatalog c2 = msb_catalog_2x2();
  const TaskGraph enc = make_av_encoder(clip_foreman(), c2);
  const TaskGraph dec = make_av_decoder(clip_foreman(), c2);
  Time enc_deadline = kNoDeadline, dec_deadline = kNoDeadline;
  for (TaskId t : enc.all_tasks()) {
    if (enc.task(t).has_deadline()) enc_deadline = enc.task(t).deadline;
  }
  for (TaskId t : dec.all_tasks()) {
    if (dec.task(t).has_deadline()) dec_deadline = dec.task(t).deadline;
  }
  EXPECT_EQ(enc_deadline, kEncoderDeadline);  // 1e6/40 us
  EXPECT_EQ(dec_deadline, kDecoderDeadline);  // 1e6/67 us
}

TEST(Msb, PerformanceRatioScalesDeadlines) {
  const PeCatalog c3 = msb_catalog_3x3();
  const TaskGraph base = make_av_encdec(clip_foreman(), c3, 1.0);
  const TaskGraph tight = make_av_encdec(clip_foreman(), c3, 2.0);
  for (TaskId t : base.all_tasks()) {
    if (!base.task(t).has_deadline()) continue;
    EXPECT_EQ(tight.task(t).deadline, base.task(t).deadline / 2);
  }
  EXPECT_THROW(make_av_encdec(clip_foreman(), c3, 0.0), Error);
}

TEST(Msb, RatioDoesNotChangeWorkOrVolumes) {
  const PeCatalog c3 = msb_catalog_3x3();
  const TaskGraph a = make_av_encdec(clip_foreman(), c3, 1.0);
  const TaskGraph b = make_av_encdec(clip_foreman(), c3, 1.5);
  for (TaskId t : a.all_tasks()) EXPECT_EQ(a.task(t).exec_time, b.task(t).exec_time);
  for (EdgeId e : a.all_edges()) EXPECT_EQ(a.edge(e).volume, b.edge(e).volume);
}

TEST(Msb, ClipMotionOrderingReflectsInWork) {
  // Motion-estimation load must grow akiyo < foreman < toybox.
  const PeCatalog c2 = msb_catalog_2x2();
  auto me_mean = [&](const ClipProfile& clip) {
    const TaskGraph g = make_av_encoder(clip, c2);
    for (TaskId t : g.all_tasks()) {
      if (g.task(t).name == "me_luma_top") return g.mean_exec_time(t);
    }
    ADD_FAILURE() << "me_luma_top not found";
    return 0.0;
  };
  EXPECT_LT(me_mean(clip_akiyo()), me_mean(clip_foreman()));
  EXPECT_LT(me_mean(clip_foreman()), me_mean(clip_toybox()));
}

TEST(Msb, ClipVolumesScaleWithDetail) {
  const PeCatalog c2 = msb_catalog_2x2();
  auto total_volume = [&](const ClipProfile& clip) {
    const TaskGraph g = make_av_encoder(clip, c2);
    Volume v = 0;
    for (EdgeId e : g.all_edges()) v += g.edge(e).volume;
    return v;
  };
  EXPECT_LT(total_volume(clip_akiyo()), total_volume(clip_foreman()));
  EXPECT_LT(total_volume(clip_foreman()), total_volume(clip_toybox()));
}

TEST(Msb, DeterministicTables) {
  const PeCatalog c3 = msb_catalog_3x3();
  const TaskGraph a = make_av_encdec(clip_foreman(), c3);
  const TaskGraph b = make_av_encdec(clip_foreman(), c3);
  for (TaskId t : a.all_tasks()) {
    EXPECT_EQ(a.task(t).exec_time, b.task(t).exec_time);
    EXPECT_EQ(a.task(t).exec_energy, b.task(t).exec_energy);
  }
}

TEST(Msb, EncDecIsDisjointUnion) {
  const PeCatalog c3 = msb_catalog_3x3();
  const TaskGraph g = make_av_encdec(clip_foreman(), c3);
  // No edges cross the encoder/decoder boundary (independent applications).
  for (EdgeId e : g.all_edges()) {
    const bool src_enc = g.edge(e).src.value < 24;
    const bool dst_enc = g.edge(e).dst.value < 24;
    EXPECT_EQ(src_enc, dst_enc);
  }
}

TEST(Msb, BaselineDeadlinesFeasibleOnMeanRelaxation) {
  const PeCatalog c3 = msb_catalog_3x3();
  for (const ClipProfile& clip : all_clips()) {
    const TaskGraph g = make_av_encdec(clip, c3);
    const auto fp = forward_pass(g, mean_durations(g));
    for (TaskId t : g.all_tasks()) {
      if (!g.task(t).has_deadline()) continue;
      EXPECT_GT(static_cast<double>(g.task(t).deadline), fp.earliest_finish[t.index()])
          << g.task(t).name << " for clip " << clip.name;
    }
  }
}

}  // namespace
}  // namespace noceas
