// Unit tests for the Communication Task Graph structure and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/ctg/serialize.hpp"
#include "src/ctg/task_graph.hpp"

namespace noceas {
namespace {

TaskGraph small_graph() {
  TaskGraph g(2);
  g.add_task("a", {10, 20}, {1.0, 2.0});
  g.add_task("b", {30, 40}, {3.0, 4.0}, 100);
  g.add_task("c", {50, 60}, {5.0, 6.0});
  g.add_edge(TaskId{0}, TaskId{1}, 64);
  g.add_edge(TaskId{0}, TaskId{2}, 0);  // control dependency
  g.add_edge(TaskId{1}, TaskId{2}, 128);
  return g;
}

TEST(TaskGraph, BasicShape) {
  const TaskGraph g = small_graph();
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_pes(), 2u);
  EXPECT_EQ(g.in_degree(TaskId{2}), 2u);
  EXPECT_EQ(g.out_degree(TaskId{0}), 2u);
  EXPECT_EQ(g.task(TaskId{1}).deadline, 100);
  EXPECT_TRUE(g.task(TaskId{1}).has_deadline());
  EXPECT_FALSE(g.task(TaskId{0}).has_deadline());
}

TEST(TaskGraph, PredsAndSuccs) {
  const TaskGraph g = small_graph();
  const auto preds = g.preds(TaskId{2});
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], TaskId{0});
  EXPECT_EQ(preds[1], TaskId{1});
  const auto succs = g.succs(TaskId{0});
  ASSERT_EQ(succs.size(), 2u);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = small_graph();
  EXPECT_EQ(g.sources(), std::vector<TaskId>{TaskId{0}});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{TaskId{2}});
}

TEST(TaskGraph, ControlEdgesAreMarked) {
  const TaskGraph g = small_graph();
  EXPECT_FALSE(g.edge(EdgeId{0}).is_control_only());
  EXPECT_TRUE(g.edge(EdgeId{1}).is_control_only());
}

TEST(TaskGraph, StatisticsMatchHandComputation) {
  const TaskGraph g = small_graph();
  EXPECT_DOUBLE_EQ(g.mean_exec_time(TaskId{0}), 15.0);
  EXPECT_DOUBLE_EQ(g.exec_time_variance(TaskId{0}), 25.0);  // population
  EXPECT_DOUBLE_EQ(g.energy_variance(TaskId{0}), 0.25);
  EXPECT_EQ(g.total_in_volume(TaskId{2}), 128);
}

TEST(TaskGraph, RejectsBadTaskInputs) {
  TaskGraph g(2);
  EXPECT_THROW(g.add_task("x", {10}, {1.0, 1.0}), Error);       // wrong arity
  EXPECT_THROW(g.add_task("x", {10, 0}, {1.0, 1.0}), Error);    // zero time
  EXPECT_THROW(g.add_task("x", {10, 10}, {1.0, -1.0}), Error);  // negative energy
  EXPECT_THROW(g.add_task("x", {10, 10}, {1.0, 1.0}, 0), Error);  // zero deadline
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g(1);
  g.add_task("a", {1}, {0.0});
  g.add_task("b", {1}, {0.0});
  EXPECT_THROW(g.add_edge(TaskId{0}, TaskId{0}, 1), Error);   // self loop
  EXPECT_THROW(g.add_edge(TaskId{0}, TaskId{5}, 1), Error);   // out of range
  EXPECT_THROW(g.add_edge(TaskId{0}, TaskId{1}, -1), Error);  // negative volume
}

TEST(TaskGraph, ValidateDetectsCycle) {
  TaskGraph g(1);
  g.add_task("a", {1}, {0.0});
  g.add_task("b", {1}, {0.0});
  g.add_edge(TaskId{0}, TaskId{1}, 1);
  g.add_edge(TaskId{1}, TaskId{0}, 1);
  EXPECT_THROW(g.validate(), Error);
}

TEST(TaskGraph, ValidateAcceptsDag) { EXPECT_NO_THROW(small_graph().validate()); }

TEST(TaskGraph, ZeroPesRejected) { EXPECT_THROW(TaskGraph(0), Error); }

TEST(TaskGraph, DotContainsTasksAndEdges) {
  std::ostringstream os;
  small_graph().to_dot(os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("128b"), std::string::npos);
  EXPECT_NE(dot.find("d=100"), std::string::npos);
}

// ---- serialization ------------------------------------------------------------

TEST(Serialize, RoundTripPreservesEverything) {
  const TaskGraph g = small_graph();
  const TaskGraph h = ctg_from_string(ctg_to_string(g));
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  ASSERT_EQ(h.num_pes(), g.num_pes());
  for (TaskId t : g.all_tasks()) {
    EXPECT_EQ(h.task(t).name, g.task(t).name);
    EXPECT_EQ(h.task(t).exec_time, g.task(t).exec_time);
    EXPECT_EQ(h.task(t).exec_energy, g.task(t).exec_energy);
    EXPECT_EQ(h.task(t).deadline, g.task(t).deadline);
  }
  for (EdgeId e : g.all_edges()) {
    EXPECT_EQ(h.edge(e).src, g.edge(e).src);
    EXPECT_EQ(h.edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(h.edge(e).volume, g.edge(e).volume);
  }
}

TEST(Serialize, SkipsCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n\nctg 2 1 1\n"
      "# tasks\n"
      "task a - 0 5 1.5\n"
      "task b 99 3 7 2.5\n"
      "edge 0 1 42\n");
  const TaskGraph g = read_ctg(is);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.task(TaskId{1}).deadline, 99);
  EXPECT_EQ(g.task(TaskId{1}).release, 3);
  EXPECT_EQ(g.task(TaskId{0}).release, 0);
  EXPECT_EQ(g.edge(EdgeId{0}).volume, 42);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(ctg_from_string(""), Error);
  EXPECT_THROW(ctg_from_string("nope 1 0 1\n"), Error);
  EXPECT_THROW(ctg_from_string("ctg 1 0 1\n"), Error);              // missing task line
  EXPECT_THROW(ctg_from_string("ctg 1 0 1\ntask a - 0\n"), Error);  // missing arrays
  EXPECT_THROW(
      ctg_from_string("ctg 2 1 1\ntask a - 0 1 0\ntask b - 0 1 0\nedge 0 9 1\n"), Error);
}

}  // namespace
}  // namespace noceas
