// Unit + property tests for the flit-level wormhole simulator.
#include <gtest/gtest.h>

#include "src/core/eas.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/sim/wormhole_sim.hpp"

namespace noceas {
namespace {

Platform platform2x2() { return make_mesh_platform(2, 2, {"A", "B", "C", "D"}, 10.0); }

/// Hand-built schedule: a on tile 0 [0,10), b on tile 3 — transfer 0->3 is
/// 2 links, 100 bits = 10 flits.
struct PairFixture {
  TaskGraph g{4};
  Platform p = platform2x2();
  Schedule s;

  PairFixture() {
    g.add_task("a", {10, 10, 10, 10}, {1, 1, 1, 1});
    g.add_task("b", {10, 10, 10, 10}, {1, 1, 1, 1});
    g.add_edge(TaskId{0}, TaskId{1}, 100);
    s = Schedule(2, 1);
    s.tasks[0] = {PeId{0}, 0, 10};
    s.tasks[1] = {PeId{3}, 22, 32};
    s.comms[0] = {PeId{0}, PeId{3}, 10, 10};  // reserved [10, 20)
  }
};

TEST(Sim, SinglePacketLatencyIsFlitsPlusPipeline) {
  PairFixture f;
  const SimReport r = simulate_schedule(f.g, f.p, f.s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.packets, 1u);
  EXPECT_EQ(r.total_flits, 10u);
  // Injection at 10; 10 flits over 2 pipelined links: last flit lands at
  // 10 + 10 + (2 - 1) = 21.
  EXPECT_EQ(r.packet_arrival[0], 21);
  EXPECT_EQ(r.task_finish[1], 21 + 10);  // b starts as soon as data arrives
  EXPECT_EQ(r.total_flit_hops, 20u);
}

TEST(Sim, LocalDeliveryNeedsNoNetwork) {
  PairFixture f;
  f.s.tasks[1] = {PeId{0}, 10, 20};
  f.s.comms[0] = {PeId{0}, PeId{0}, 10, 0};
  const SimReport r = simulate_schedule(f.g, f.p, f.s);
  EXPECT_EQ(r.packets, 0u);
  EXPECT_EQ(r.task_finish[1], 20);
}

TEST(Sim, TimeTriggeredHoldsUntilReservedSlot) {
  PairFixture f;
  // Reserve the transfer later than the sender finish.
  f.s.comms[0].start = 40;
  f.s.tasks[1] = {PeId{3}, 52, 62};
  SimOptions options;
  options.policy = ReleasePolicy::TimeTriggered;
  const SimReport r = simulate_schedule(f.g, f.p, f.s, options);
  EXPECT_EQ(r.packet_arrival[0], 40 + 10 + 1);
  // Self-timed launches at sender finish instead.
  const SimReport st = simulate_schedule(f.g, f.p, f.s);
  EXPECT_EQ(st.packet_arrival[0], 10 + 10 + 1);
}

TEST(Sim, TimeTriggeredHoldsTaskStarts) {
  PairFixture f;
  f.s.tasks[0] = {PeId{0}, 30, 40};  // scheduled to start late
  f.s.comms[0].start = 40;
  f.s.tasks[1] = {PeId{3}, 52, 62};
  SimOptions options;
  options.policy = ReleasePolicy::TimeTriggered;
  const SimReport r = simulate_schedule(f.g, f.p, f.s, options);
  EXPECT_EQ(r.task_start[0], 30);
  const SimReport st = simulate_schedule(f.g, f.p, f.s);
  EXPECT_EQ(st.task_start[0], 0);  // self-timed runs immediately
}

TEST(Sim, ContentionSerializedByPriority) {
  // Two packets over the same single link, both waiting when the link is
  // free: the one with the earlier *reserved slot* wins the arbitration,
  // regardless of edge id or injection order.
  Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("a", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("b", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("c", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("d", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_edge(TaskId{0}, TaskId{2}, 50);  // 5 flits each
  g.add_edge(TaskId{1}, TaskId{3}, 50);
  Schedule s(4, 2);
  // Tasks a and b run back-to-back on tile 0; packet 0 (from a, injected at
  // 10) carries the LATER reserved slot, packet 1 (from b, injected at 20)
  // the earlier one. Both wait at cycle 20; packet 1 must win.
  s.tasks[0] = {PeId{0}, 0, 10};
  s.tasks[1] = {PeId{0}, 10, 20};
  s.tasks[2] = {PeId{1}, 30, 40};
  s.tasks[3] = {PeId{1}, 40, 50};
  s.comms[0] = {PeId{0}, PeId{1}, 25, 5};  // reserved later -> lower priority
  s.comms[1] = {PeId{0}, PeId{1}, 20, 5};
  SimOptions options;
  options.policy = ReleasePolicy::TimeTriggered;  // hold pkt0 until cycle 25
  const SimReport tt = simulate_schedule(g, p, s, options);
  EXPECT_EQ(tt.packet_arrival[1], 25);  // cycles 20..24
  EXPECT_EQ(tt.packet_arrival[0], 30);  // cycles 25..29
  // Self-timed: packet 0 is alone on the link at cycle 10 and goes first
  // (cycles 10..14); packet 1 follows on injection at 20.
  const SimReport st = simulate_schedule(g, p, s);
  EXPECT_EQ(st.packet_arrival[0], 15);
  EXPECT_EQ(st.packet_arrival[1], 25);
}

TEST(Sim, RequiresCompleteSchedule) {
  PairFixture f;
  Schedule incomplete(2, 1);
  EXPECT_THROW((void)simulate_schedule(f.g, f.p, incomplete), Error);
}

TEST(Sim, RejectsBadBufferDepth) {
  PairFixture f;
  SimOptions options;
  options.buffer_flits = 0;
  EXPECT_THROW((void)simulate_schedule(f.g, f.p, f.s, options), Error);
}

TEST(Sim, DetectsStalledExecution) {
  // Order inversion on one PE: b ordered before a but depends on a.
  Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("a", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("b", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_edge(TaskId{0}, TaskId{1}, 0);
  Schedule s(2, 1);
  // b placed BEFORE a on the same PE -> b waits for a forever, a waits for
  // its turn in the order.
  s.tasks[1] = {PeId{0}, 0, 10};
  s.tasks[0] = {PeId{0}, 10, 20};
  s.comms[0] = {PeId{0}, PeId{0}, 20, 0};
  EXPECT_THROW((void)simulate_schedule(g, p, s), Error);
}

// ---- property sweeps -------------------------------------------------------

class SimSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimSweep, EasSchedulesExecuteCleanly) {
  static const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  const Platform p = make_platform_for(catalog, 4, 4);
  TgffParams params = category_params(1, GetParam());
  params.num_tasks = 120;
  params.num_edges = 240;
  const TaskGraph g = generate_tgff_like(params, catalog);
  const EasResult r = schedule_eas(g, p);

  for (ReleasePolicy policy : {ReleasePolicy::SelfTimed, ReleasePolicy::TimeTriggered}) {
    SimOptions options;
    options.policy = policy;
    const SimReport sim = simulate_schedule(g, p, r.schedule, options);
    ASSERT_TRUE(sim.completed);
    // Every task ran, after its data, for the right duration.
    for (TaskId t : g.all_tasks()) {
      const PeId pe = r.schedule.at(t).pe;
      ASSERT_EQ(sim.task_finish[t.index()] - sim.task_start[t.index()],
                g.task(t).exec_time[pe.index()]);
    }
    for (EdgeId e : g.all_edges()) {
      const CommPlacement& cp = r.schedule.at(e);
      if (!cp.uses_network()) continue;
      ASSERT_NE(sim.packet_arrival[e.index()], kUnsetTime);
      ASSERT_GE(sim.packet_arrival[e.index()],
                sim.task_finish[g.edge(e).src.index()]);
      ASSERT_LE(sim.task_start[g.edge(e).dst.index()] + 0,
                sim.task_start[g.edge(e).dst.index()]);
      ASSERT_GE(sim.task_start[g.edge(e).dst.index()], sim.packet_arrival[e.index()]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSweep, ::testing::Range(0, 5));

TEST(Sim, GuardedReservationsTrackTablesExactly) {
  // With pipeline-guarded reservations, time-triggered execution never lags
  // the static tables.
  static const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  const Platform p = make_mesh_platform(4, 4, catalog.tile_type_names(), 64.0,
                                        RoutingAlgorithm::XY, EnergyParams{}, false,
                                        /*pipeline_guard=*/true);
  TgffParams params = category_params(2, 1);
  params.num_tasks = 150;
  params.num_edges = 300;
  const TaskGraph g = generate_tgff_like(params, catalog);
  const EasResult r = schedule_eas(g, p);
  SimOptions options;
  options.policy = ReleasePolicy::TimeTriggered;
  const SimReport sim = simulate_schedule(g, p, r.schedule, options);
  EXPECT_TRUE(sim.completed);
  EXPECT_LE(sim.max_arrival_lag, 0);
  EXPECT_EQ(sim.misses.miss_count, r.misses.miss_count);
}

TEST(Sim, OverrunStretchesExecution) {
  PairFixture f;
  SimOptions options;
  options.exec_overrun = 0.5;
  options.overrun_seed = 9;
  const SimReport r = simulate_schedule(f.g, f.p, f.s, options);
  // Both tasks run at least their nominal 10 cycles and at most 15.
  for (TaskId t : f.g.all_tasks()) {
    const Duration ran = r.task_finish[t.index()] - r.task_start[t.index()];
    EXPECT_GE(ran, 10);
    EXPECT_LE(ran, 16);
  }
  // Zero overrun reproduces the nominal run exactly.
  SimOptions zero;
  zero.exec_overrun = 0.0;
  const SimReport base = simulate_schedule(f.g, f.p, f.s, zero);
  const SimReport base2 = simulate_schedule(f.g, f.p, f.s);
  EXPECT_EQ(base.makespan, base2.makespan);
  EXPECT_LE(base.makespan, r.makespan);
}

TEST(Sim, OverrunDeterministicBySeed) {
  PairFixture f;
  SimOptions a;
  a.exec_overrun = 0.3;
  a.overrun_seed = 5;
  SimOptions b = a;
  const SimReport ra = simulate_schedule(f.g, f.p, f.s, a);
  const SimReport rb = simulate_schedule(f.g, f.p, f.s, b);
  EXPECT_EQ(ra.makespan, rb.makespan);
  a.overrun_seed = 6;
  // Different seed may differ (not guaranteed, but must not crash).
  (void)simulate_schedule(f.g, f.p, f.s, a);
}

TEST(Sim, RejectsNegativeOverrun) {
  PairFixture f;
  SimOptions options;
  options.exec_overrun = -0.1;
  EXPECT_THROW((void)simulate_schedule(f.g, f.p, f.s, options), Error);
}

TEST(Sim, MsbPipelinesExecuteWithTinyLag) {
  const PeCatalog catalog = msb_catalog_3x3();
  const Platform p = msb_platform_3x3();
  const TaskGraph g = make_av_encdec(clip_foreman(), catalog);
  const EasResult r = schedule_eas(g, p);
  const SimReport sim = simulate_schedule(g, p, r.schedule);
  EXPECT_TRUE(sim.completed);
  EXPECT_EQ(sim.misses.miss_count, 0u);
  // Lag bounded by the pipeline fill of the longest route (8 links) plus 1.
  EXPECT_LE(sim.max_arrival_lag, 9);
}

}  // namespace
}  // namespace noceas
