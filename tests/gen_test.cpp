// Unit tests for the heterogeneity model and the TGFF-like generator.
#include <gtest/gtest.h>

#include <set>

#include "src/ctg/dag_algos.hpp"
#include "src/gen/tgff.hpp"

namespace noceas {
namespace {

TEST(PeCatalog, TablesFollowSpeedAndPower) {
  // One reference PE (speed 1, power 2) and one double-speed PE (power 4).
  std::vector<PeTypeDesc> types{
      {"REF", {1, 1, 1, 1, 1}, 2.0},
      {"FAST", {2, 2, 2, 2, 2}, 4.0},
  };
  const PeCatalog catalog(types, {0, 1});
  Rng rng(1);
  const auto tables = catalog.make_tables(TaskKind::Generic, 100.0, rng, /*jitter=*/0.0);
  ASSERT_EQ(tables.exec_time.size(), 2u);
  EXPECT_EQ(tables.exec_time[0], 100);
  EXPECT_EQ(tables.exec_time[1], 50);
  EXPECT_DOUBLE_EQ(tables.exec_energy[0], 200.0);
  EXPECT_DOUBLE_EQ(tables.exec_energy[1], 200.0);
}

TEST(PeCatalog, KindSelectsSpeedColumn) {
  std::vector<PeTypeDesc> types{{"DSPish", {1, 4, 1, 1, 1}, 1.0}};
  const PeCatalog catalog(types, {0});
  Rng rng(1);
  EXPECT_EQ(catalog.make_tables(TaskKind::Dsp, 100.0, rng, 0.0).exec_time[0], 25);
  EXPECT_EQ(catalog.make_tables(TaskKind::Video, 100.0, rng, 0.0).exec_time[0], 100);
}

TEST(PeCatalog, JitterBoundsRespected) {
  std::vector<PeTypeDesc> types{{"REF", {1, 1, 1, 1, 1}, 1.0}};
  const PeCatalog catalog(types, {0});
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto t = catalog.make_tables(TaskKind::Generic, 1000.0, rng, 0.10);
    EXPECT_GE(t.exec_time[0], 900);
    EXPECT_LE(t.exec_time[0], 1100);
  }
}

TEST(PeCatalog, MinimumOneTimeUnit) {
  std::vector<PeTypeDesc> types{{"FAST", {100, 100, 100, 100, 100}, 1.0}};
  const PeCatalog catalog(types, {0});
  Rng rng(1);
  EXPECT_EQ(catalog.make_tables(TaskKind::Generic, 1.0, rng, 0.0).exec_time[0], 1);
}

TEST(PeCatalog, RejectsBadInputs) {
  EXPECT_THROW(PeCatalog({}, {}), Error);
  std::vector<PeTypeDesc> types{{"A", {1, 1, 1, 1, 1}, 1.0}};
  EXPECT_THROW(PeCatalog(types, {1}), Error);  // index out of range
  std::vector<PeTypeDesc> bad{{"B", {0, 1, 1, 1, 1}, 1.0}};
  EXPECT_THROW(PeCatalog(bad, {0}), Error);  // zero speed
  const PeCatalog ok(types, {0});
  Rng rng(1);
  EXPECT_THROW(ok.make_tables(TaskKind::Generic, -1.0, rng), Error);
  EXPECT_THROW(ok.make_tables(TaskKind::Generic, 1.0, rng, 1.5), Error);
}

TEST(HeteroCatalog, CoversAllTypes) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  std::set<std::string> seen;
  for (const auto& name : catalog.tile_type_names()) seen.insert(name);
  EXPECT_EQ(seen.size(), default_pe_types().size());
}

TEST(HeteroCatalog, DeterministicBySeed) {
  const auto a = make_hetero_catalog(4, 4, 42).tile_type_names();
  const auto b = make_hetero_catalog(4, 4, 42).tile_type_names();
  const auto c = make_hetero_catalog(4, 4, 43).tile_type_names();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Tgff, HitsTargetSizes) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params;
  params.num_tasks = 300;
  params.num_edges = 600;
  params.seed = 5;
  const TaskGraph g = generate_tgff_like(params, catalog);
  EXPECT_EQ(g.num_tasks(), 300u);
  // Edge count is a target; allow small shortfall from dedup collisions.
  EXPECT_GE(g.num_edges(), 570u);
  EXPECT_LE(g.num_edges(), 600u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Tgff, DeterministicBySeed) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params;
  params.num_tasks = 100;
  params.num_edges = 200;
  params.seed = 9;
  const TaskGraph a = generate_tgff_like(params, catalog);
  const TaskGraph b = generate_tgff_like(params, catalog);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (TaskId t : a.all_tasks()) {
    EXPECT_EQ(a.task(t).exec_time, b.task(t).exec_time);
    EXPECT_EQ(a.task(t).deadline, b.task(t).deadline);
  }
  params.seed = 10;
  const TaskGraph c = generate_tgff_like(params, catalog);
  bool differs = c.num_edges() != a.num_edges();
  for (TaskId t : a.all_tasks()) differs |= (a.task(t).exec_time != c.task(t).exec_time);
  EXPECT_TRUE(differs);
}

TEST(Tgff, EverySinkHasDeadline) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params;
  params.num_tasks = 200;
  params.num_edges = 400;
  params.seed = 3;
  const TaskGraph g = generate_tgff_like(params, catalog);
  for (TaskId t : g.sinks()) {
    EXPECT_TRUE(g.task(t).has_deadline()) << "sink " << g.task(t).name;
  }
}

TEST(Tgff, DeadlinesAreAchievableOnMeanRelaxation) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params;
  params.num_tasks = 200;
  params.num_edges = 400;
  params.seed = 3;
  const TaskGraph g = generate_tgff_like(params, catalog);
  const auto fp = forward_pass(g, mean_durations(g));
  for (TaskId t : g.all_tasks()) {
    if (!g.task(t).has_deadline()) continue;
    EXPECT_GE(static_cast<double>(g.task(t).deadline) + 1.0, fp.earliest_finish[t.index()]);
  }
}

TEST(Tgff, ControlEdgeFractionRoughlyRespected) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params;
  params.num_tasks = 400;
  params.num_edges = 800;
  params.control_edge_fraction = 0.10;
  params.seed = 11;
  const TaskGraph g = generate_tgff_like(params, catalog);
  std::size_t control = 0;
  for (EdgeId e : g.all_edges())
    if (g.edge(e).is_control_only()) ++control;
  const double fraction = static_cast<double>(control) / static_cast<double>(g.num_edges());
  EXPECT_NEAR(fraction, 0.10, 0.05);
}

TEST(TgffSp, SeriesParallelIsValidDag) {
  const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params;
  params.shape = GraphShape::SeriesParallel;
  params.num_tasks = 300;
  params.num_edges = 600;
  params.seed = 17;
  const TaskGraph g = generate_tgff_like(params, catalog);
  EXPECT_EQ(g.num_tasks(), 300u);
  EXPECT_NO_THROW(g.validate());
  // SP edges always point to higher ids: id order is topological.
  for (EdgeId e : g.all_edges()) {
    EXPECT_LT(g.edge(e).src.value, g.edge(e).dst.value);
  }
}

TEST(TgffSp, SingleSourceSingleSink) {
  const PeCatalog catalog = make_hetero_catalog(2, 2, 1);
  TgffParams params;
  params.shape = GraphShape::SeriesParallel;
  params.num_tasks = 120;
  params.num_edges = 200;
  params.seed = 23;
  const TaskGraph g = generate_tgff_like(params, catalog);
  // The SP skeleton has exactly one source; extra cross edges never add
  // sources (they only add in-edges).
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_GE(g.sinks().size(), 1u);
  for (TaskId t : g.sinks()) EXPECT_TRUE(g.task(t).has_deadline());
}

TEST(TgffSp, DiffersFromLayered) {
  const PeCatalog catalog = make_hetero_catalog(2, 2, 1);
  TgffParams params;
  params.num_tasks = 100;
  params.num_edges = 200;
  params.seed = 29;
  params.shape = GraphShape::Layered;
  const TaskGraph layered = generate_tgff_like(params, catalog);
  params.shape = GraphShape::SeriesParallel;
  const TaskGraph sp = generate_tgff_like(params, catalog);
  // Layered graphs have many sources in layer 0; SP has one.
  EXPECT_GT(layered.sources().size(), sp.sources().size());
}

TEST(CategoryParams, TwoIsTighterThanOne) {
  for (int i = 0; i < 10; ++i) {
    const TgffParams c1 = category_params(1, i);
    const TgffParams c2 = category_params(2, i);
    EXPECT_GT(c1.deadline_tightness_min, c2.deadline_tightness_min);
    EXPECT_GT(c1.deadline_tightness_max, c2.deadline_tightness_max);
    EXPECT_NE(c1.seed, c2.seed);
  }
}

TEST(CategoryParams, IndicesVaryTopology) {
  std::set<double> widths;
  for (int i = 0; i < 10; ++i) widths.insert(category_params(1, i).avg_layer_width);
  EXPECT_GE(widths.size(), 3u);
  EXPECT_THROW((void)category_params(3, 0), Error);
  EXPECT_THROW((void)category_params(1, 10), Error);
}

}  // namespace
}  // namespace noceas
