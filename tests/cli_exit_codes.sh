#!/bin/sh
# Asserts the machine-readable exit-code contract of noceas_cli:
#   0  success
#   1  run failed (unreadable input, deadline misses, failed campaign runs)
#   2  bad invocation (unknown command/flag, missing required flag)
#   3  validation / replay mismatch
#
# Usage: cli_exit_codes.sh /path/to/noceas_cli
# Registered as a ctest case; any unexpected exit code fails the script.
set -u

cli="${1:?usage: cli_exit_codes.sh /path/to/noceas_cli}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
failures=0

expect() {
  want="$1"
  label="$2"
  shift 2
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got (cmd: $*)" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label -> $got"
  fi
}

# --- fixtures -----------------------------------------------------------
"$cli" gen --category 1 --index 0 --ctg "$tmp/g.txt" --platform "$tmp/p.txt" >/dev/null
expect 0 "schedule + export" \
  "$cli" schedule --ctg "$tmp/g.txt" --platform "$tmp/p.txt" --scheduler edf \
         --schedule-out "$tmp/s.txt" --decisions "$tmp/d.jsonl"

# --- exit 0: success ----------------------------------------------------
expect 0 "validate intact schedule" \
  "$cli" validate --schedule "$tmp/s.txt" --ctg "$tmp/g.txt" --platform "$tmp/p.txt"
expect 0 "audit replay intact stream" \
  "$cli" audit --replay --decisions "$tmp/d.jsonl" --ctg "$tmp/g.txt" --platform "$tmp/p.txt"

# --- exit 2: bad invocation --------------------------------------------
expect 2 "no command" "$cli"
expect 2 "unknown command" "$cli" frobnicate
expect 2 "unknown flag" \
  "$cli" schedule --ctg "$tmp/g.txt" --platform "$tmp/p.txt" --bogus
expect 2 "missing required flag" "$cli" schedule --ctg "$tmp/g.txt"
expect 2 "campaign without --out" "$cli" campaign --categories 1
expect 2 "campaign without apps" "$cli" campaign --out "$tmp/camp"

# --- exit 1: run failed -------------------------------------------------
expect 1 "unreadable ctg" \
  "$cli" schedule --ctg "$tmp/missing.txt" --platform "$tmp/p.txt"
expect 1 "campaign with unknown scheduler" \
  "$cli" campaign --out "$tmp/camp" --categories 1 --schedulers frobnicate

# --- exit 3: validation / replay mismatch ------------------------------
# Corrupt the exported schedule: bump task 0's finish time by one tick.  The
# validator flags finish != start + exec unconditionally, so this mismatch is
# guaranteed regardless of the schedule's shape.
awk '$1 == "task" && $2 == 0 { $5 = $5 + 1 } { print }' "$tmp/s.txt" > "$tmp/bad.txt"
expect 3 "validate tampered schedule" \
  "$cli" validate --schedule "$tmp/bad.txt" --ctg "$tmp/g.txt" --platform "$tmp/p.txt"

if [ "$failures" -ne 0 ]; then
  echo "$failures exit-code assertion(s) failed" >&2
  exit 1
fi
echo "all exit-code assertions passed"
