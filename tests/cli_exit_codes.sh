#!/bin/sh
# Asserts the machine-readable exit-code contract of noceas_cli:
#   0  success
#   1  run failed (unreadable input, deadline misses, failed campaign runs)
#   2  bad invocation (unknown command/flag, missing required flag)
#   3  validation / replay mismatch
#   4  incompatible shard set (campaign merge)
#
# Usage: cli_exit_codes.sh /path/to/noceas_cli
# Registered as a ctest case; any unexpected exit code fails the script.
set -u

cli="${1:?usage: cli_exit_codes.sh /path/to/noceas_cli}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
failures=0

expect() {
  want="$1"
  label="$2"
  shift 2
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got (cmd: $*)" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label -> $got"
  fi
}

# --- fixtures -----------------------------------------------------------
"$cli" gen --category 1 --index 0 --ctg "$tmp/g.txt" --platform "$tmp/p.txt" >/dev/null
expect 0 "schedule + export" \
  "$cli" schedule --ctg "$tmp/g.txt" --platform "$tmp/p.txt" --scheduler edf \
         --schedule-out "$tmp/s.txt" --decisions "$tmp/d.jsonl"

# --- exit 0: success ----------------------------------------------------
expect 0 "validate intact schedule" \
  "$cli" validate --schedule "$tmp/s.txt" --ctg "$tmp/g.txt" --platform "$tmp/p.txt"
expect 0 "audit replay intact stream" \
  "$cli" audit --replay --decisions "$tmp/d.jsonl" --ctg "$tmp/g.txt" --platform "$tmp/p.txt"

# --- exit 2: bad invocation --------------------------------------------
expect 2 "no command" "$cli"
expect 2 "unknown command" "$cli" frobnicate
expect 2 "unknown flag" \
  "$cli" schedule --ctg "$tmp/g.txt" --platform "$tmp/p.txt" --bogus
expect 2 "missing required flag" "$cli" schedule --ctg "$tmp/g.txt"
expect 2 "campaign without --out" "$cli" campaign --categories 1
expect 2 "campaign without apps" "$cli" campaign --out "$tmp/camp"

# --- exit 1: run failed -------------------------------------------------
expect 1 "unreadable ctg" \
  "$cli" schedule --ctg "$tmp/missing.txt" --platform "$tmp/p.txt"
expect 1 "campaign with unknown scheduler" \
  "$cli" campaign --out "$tmp/camp" --categories 1 --schedulers frobnicate

# --- exit 3: validation / replay mismatch ------------------------------
# Corrupt the exported schedule: bump task 0's finish time by one tick.  The
# validator flags finish != start + exec unconditionally, so this mismatch is
# guaranteed regardless of the schedule's shape.
awk '$1 == "task" && $2 == 0 { $5 = $5 + 1 } { print }' "$tmp/s.txt" > "$tmp/bad.txt"
expect 3 "validate tampered schedule" \
  "$cli" validate --schedule "$tmp/bad.txt" --ctg "$tmp/g.txt" --platform "$tmp/p.txt"

# --- exit 4: incompatible shard set (campaign merge) --------------------
# A small 2-shard fleet: category-1 apps x 2 seeds x 1 scheduler.
expect 0 "campaign shard 0/2" \
  "$cli" campaign --out "$tmp/fleet/s0" --categories 1 --seeds 2 \
         --schedulers edf --shard 0/2
expect 0 "campaign shard 1/2" \
  "$cli" campaign --out "$tmp/fleet/s1" --categories 1 --seeds 2 \
         --schedulers edf --shard 1/2
expect 2 "bad --shard syntax" \
  "$cli" campaign --out "$tmp/fleet/sx" --categories 1 --shard 2of3
expect 2 "merge without --shards" "$cli" campaign merge --out "$tmp/fleet/m"
expect 0 "merge complete fleet" \
  "$cli" campaign merge --out "$tmp/fleet/merged" \
         --shards "$tmp/fleet/s0,$tmp/fleet/s1"
expect 4 "merge overlapping shards" \
  "$cli" campaign merge --out "$tmp/fleet/m2" \
         --shards "$tmp/fleet/s0,$tmp/fleet/s0"
expect 4 "merge missing shard" \
  "$cli" campaign merge --out "$tmp/fleet/m3" --shards "$tmp/fleet/s0"
# A shard of a different spec (extra seed) cannot merge with the fleet.
expect 0 "campaign foreign shard" \
  "$cli" campaign --out "$tmp/fleet/sF" --categories 1 --seeds 3 \
         --schedulers edf --shard 1/2
expect 4 "merge fingerprint mismatch" \
  "$cli" campaign merge --out "$tmp/fleet/m4" \
         --shards "$tmp/fleet/s0,$tmp/fleet/sF"
# The refusal reason is one machine-readable stderr line.
reason="$("$cli" campaign merge --out "$tmp/fleet/m5" \
          --shards "$tmp/fleet/s0,$tmp/fleet/s0" 2>&1 >/dev/null)"
case "$reason" in
  *"reason=overlapping_shards"*) echo "ok: merge refusal names its reason" ;;
  *) echo "FAIL: merge refusal reason missing (got: $reason)" >&2
     failures=$((failures + 1)) ;;
esac

if [ "$failures" -ne 0 ]; then
  echo "$failures exit-code assertion(s) failed" >&2
  exit 1
fi
echo "all exit-code assertions passed"
