// Unit + property tests for the shared list-scheduler machinery: probing
// must be side-effect free and committing must realize exactly the probed
// timing (the paper's restore-the-tables discipline).
#include <gtest/gtest.h>

#include "src/core/list_common.hpp"
#include "src/gen/tgff.hpp"

namespace noceas {
namespace {

Platform platform2x2(bool guard = false) {
  return make_mesh_platform(2, 2, {"A", "B", "C", "D"}, 10.0, RoutingAlgorithm::XY,
                            EnergyParams{}, false, guard);
}

TEST(Probe, LeavesTablesUntouched) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("s", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("r", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_edge(TaskId{0}, TaskId{1}, 200);
  Schedule s(2, 1);
  ResourceTables tables(p);
  commit_placement(g, p, TaskId{0}, PeId{0}, s, tables);

  // Snapshot, probe everywhere, compare.
  std::vector<std::vector<Interval>> pe_before, link_before;
  for (const auto& t : tables.pe) pe_before.push_back(t.busy());
  for (const auto& t : tables.link) link_before.push_back(t.busy());
  for (PeId k : p.all_pes()) (void)probe_placement(g, p, TaskId{1}, k, s, tables);
  for (std::size_t i = 0; i < tables.pe.size(); ++i) EXPECT_EQ(tables.pe[i].busy(), pe_before[i]);
  for (std::size_t i = 0; i < tables.link.size(); ++i)
    EXPECT_EQ(tables.link[i].busy(), link_before[i]);
}

TEST(Probe, CommitRealizesProbedTiming) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("s", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("r", {15, 25, 35, 45}, {1, 1, 1, 1});
  g.add_edge(TaskId{0}, TaskId{1}, 200);
  Schedule s(2, 1);
  ResourceTables tables(p);
  commit_placement(g, p, TaskId{0}, PeId{0}, s, tables);
  for (PeId k : p.all_pes()) {
    // The probe against the live tables must predict exactly what a commit
    // in the same state would do (replayed on fresh tables).
    const ProbeResult pr = probe_placement(g, p, TaskId{1}, k, s, tables);
    Schedule s2(2, 1);
    ResourceTables tables2(p);
    commit_placement(g, p, TaskId{0}, PeId{0}, s2, tables2);  // replay prefix
    commit_placement(g, p, TaskId{1}, k, s2, tables2);
    EXPECT_EQ(s2.at(TaskId{1}).start, pr.start) << "PE " << k.value;
    EXPECT_EQ(s2.at(TaskId{1}).finish, pr.finish) << "PE " << k.value;
  }
}

TEST(Probe, GuardedPlatformLengthensReservations) {
  const Platform plain = platform2x2(false);
  const Platform guarded = platform2x2(true);
  TaskGraph g(4);
  g.add_task("s", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("r", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_edge(TaskId{0}, TaskId{1}, 200);  // 20 ticks at bw 10
  for (const Platform* p : {&plain, &guarded}) {
    Schedule s(2, 1);
    ResourceTables tables(*p);
    commit_placement(g, *p, TaskId{0}, PeId{0}, s, tables);
    commit_placement(g, *p, TaskId{1}, PeId{3}, s, tables);  // 2-link route
    const Duration expected = p->pipeline_guard() ? 22 : 20;
    EXPECT_EQ(s.at(EdgeId{0}).duration, expected);
  }
}

TEST(Probe, DoubleCommitRejected) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("t", {10, 10, 10, 10}, {1, 1, 1, 1});
  Schedule s(1, 0);
  ResourceTables tables(p);
  commit_placement(g, p, TaskId{0}, PeId{0}, s, tables);
  EXPECT_THROW(commit_placement(g, p, TaskId{0}, PeId{1}, s, tables), Error);
}

TEST(PlacementEnergy, MatchesComponents) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("s", {10, 10, 10, 10}, {1, 1, 1, 1});
  g.add_task("r", {10, 10, 10, 10}, {2, 3, 4, 5});
  g.add_edge(TaskId{0}, TaskId{1}, 100);
  Schedule s(2, 1);
  ResourceTables tables(p);
  commit_placement(g, p, TaskId{0}, PeId{0}, s, tables);
  for (PeId k : p.all_pes()) {
    const Energy expected =
        g.task(TaskId{1}).exec_energy[k.index()] + p.transfer_energy(100, PeId{0}, k);
    EXPECT_DOUBLE_EQ(placement_energy(g, p, TaskId{1}, k, s), expected);
  }
}

// Property: on a random instance, interleaving probes with commits never
// corrupts the tables — final schedule validates.
TEST(Probe, ManyProbesNeverCorrupt) {
  static const PeCatalog catalog = make_hetero_catalog(2, 2, 3);
  const Platform p = make_platform_for(catalog, 2, 2);
  TgffParams params;
  params.num_tasks = 40;
  params.num_edges = 80;
  params.seed = 77;
  const TaskGraph g = generate_tgff_like(params, catalog);

  Schedule s(g.num_tasks(), g.num_edges());
  ResourceTables tables(p);
  std::vector<std::size_t> unplaced(g.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId t : g.all_tasks()) {
    unplaced[t.index()] = g.in_degree(t);
    if (!unplaced[t.index()]) ready.push_back(t);
  }
  Rng rng(5);
  while (!ready.empty()) {
    // Probe everything several times (stress the rollback)...
    for (TaskId t : ready)
      for (PeId k : p.all_pes()) (void)probe_placement(g, p, t, k, s, tables);
    // ...then commit a random ready task to a random PE.
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ready.size()) - 1));
    const TaskId t = ready[i];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
    commit_placement(g, p, t, PeId{static_cast<std::int32_t>(rng.uniform_int(0, 3))}, s, tables);
    for (EdgeId e : g.out_edges(t)) {
      if (--unplaced[g.edge(e).dst.index()] == 0) ready.push_back(g.edge(e).dst);
    }
  }
  EXPECT_TRUE(s.complete());
}

}  // namespace
}  // namespace noceas
