// Optimality anchors: on instances small enough to enumerate every
// assignment exhaustively, the EAS heuristic must (a) never beat the true
// optimum (sanity of the energy accounting), (b) stay within a modest
// factor of it, and (c) hit it exactly in cases where greedy selection is
// provably optimal.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/gen/tgff.hpp"

namespace noceas {
namespace {

/// Exact minimum of Eq. 3 over all assignments M: T -> P (deadlines
/// ignored; energy depends only on the assignment).
Energy brute_force_min_energy(const TaskGraph& g, const Platform& p) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = p.num_pes();
  std::vector<std::size_t> assign(n, 0);
  Energy best = std::numeric_limits<Energy>::infinity();
  while (true) {
    Energy e = 0.0;
    for (TaskId t : g.all_tasks()) e += g.task(t).exec_energy[assign[t.index()]];
    for (EdgeId edge : g.all_edges()) {
      const CommEdge& c = g.edge(edge);
      if (c.is_control_only()) continue;
      e += p.transfer_energy(c.volume, PeId{assign[c.src.index()]}, PeId{assign[c.dst.index()]});
    }
    best = std::min(best, e);
    // Next assignment (odometer).
    std::size_t i = 0;
    while (i < n && ++assign[i] == P) assign[i++] = 0;
    if (i == n) break;
  }
  return best;
}

/// Random small deadline-free CTG (deadlines stripped).
TaskGraph small_instance(std::uint64_t seed, std::size_t tasks, const PeCatalog& catalog) {
  TgffParams params;
  params.num_tasks = tasks;
  params.num_edges = tasks + tasks / 2;
  params.seed = seed;
  TaskGraph g = generate_tgff_like(params, catalog);
  for (TaskId t : g.all_tasks()) g.task(t).deadline = kNoDeadline;
  return g;
}

class OptimalityGap : public ::testing::TestWithParam<int> {};

TEST_P(OptimalityGap, EasWithinFactorOfExhaustiveOptimum) {
  const PeCatalog catalog = make_hetero_catalog(2, 2, 7);
  const Platform p = make_platform_for(catalog, 2, 2);
  const TaskGraph g = small_instance(static_cast<std::uint64_t>(GetParam()) * 101 + 3, 7, catalog);

  const Energy optimum = brute_force_min_energy(g, p);
  const EasResult eas = schedule_eas(g, p);
  const ValidationReport vr = validate_schedule(g, p, eas.schedule);
  ASSERT_TRUE(vr.ok()) << vr.to_string();

  // Never below the exhaustive optimum (energy accounting is exact) ...
  EXPECT_GE(eas.energy.total(), optimum * (1.0 - 1e-9));
  // ... and within 30% of it (heuristic quality anchor; the observed gap on
  // these instances is far smaller, but the bound must stay robust).
  EXPECT_LE(eas.energy.total(), optimum * 1.30)
      << "EAS " << eas.energy.total() << " vs optimum " << optimum;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityGap, ::testing::Range(1, 13));

TEST(Optimality, IndependentTasksAreScheduledOptimally) {
  // With no edges and no deadlines the optimum decomposes per task; the
  // regret-driven selection must find it exactly.
  const PeCatalog catalog = make_hetero_catalog(2, 2, 11);
  const Platform p = make_platform_for(catalog, 2, 2);
  TaskGraph g(p.num_pes());
  Rng rng(99);
  Energy optimum = 0.0;
  for (int i = 0; i < 8; ++i) {
    auto tables = catalog.make_tables(TaskKind::Generic, rng.uniform(50.0, 300.0), rng);
    Energy best = std::numeric_limits<Energy>::infinity();
    for (Energy e : tables.exec_energy) best = std::min(best, e);
    optimum += best;
    g.add_task("t" + std::to_string(i), std::move(tables.exec_time),
               std::move(tables.exec_energy));
  }
  const EasResult eas = schedule_eas(g, p);
  EXPECT_NEAR(eas.energy.total(), optimum, 1e-9 * optimum);
}

TEST(Optimality, ChainWithHugeVolumesCoLocatesOptimally) {
  // A chain with overwhelming communication volumes: the optimum puts the
  // whole chain on the single cheapest tile; EAS must find it.
  const Platform p = make_mesh_platform(2, 2, {"A", "B", "C", "D"}, 10.0);
  TaskGraph g(4);
  for (int i = 0; i < 5; ++i) {
    g.add_task("t" + std::to_string(i), {10, 10, 10, 10}, {5.0, 5.5, 6.0, 6.5});
  }
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(TaskId{i}, TaskId{i + 1}, 1000000);
  const EasResult eas = schedule_eas(g, p);
  for (TaskId t : g.all_tasks()) EXPECT_EQ(eas.schedule.at(t).pe, PeId{0});
  EXPECT_DOUBLE_EQ(eas.energy.total(), 25.0);
  EXPECT_DOUBLE_EQ(eas.energy.total(), brute_force_min_energy(g, p));
}

TEST(Optimality, BruteForceMatchesComputeEnergyOnEasAssignment) {
  // Cross-check the two independent energy computations on one instance.
  const PeCatalog catalog = make_hetero_catalog(2, 2, 7);
  const Platform p = make_platform_for(catalog, 2, 2);
  const TaskGraph g = small_instance(1234, 6, catalog);
  const EasResult eas = schedule_eas(g, p);
  // Recompute Eq. 3 for the EAS assignment by hand.
  Energy manual = 0.0;
  for (TaskId t : g.all_tasks()) manual += g.task(t).exec_energy[eas.schedule.at(t).pe.index()];
  for (EdgeId e : g.all_edges()) {
    const CommEdge& c = g.edge(e);
    if (c.is_control_only()) continue;
    manual += p.transfer_energy(c.volume, eas.schedule.at(c.src).pe, eas.schedule.at(c.dst).pe);
  }
  EXPECT_NEAR(manual, eas.energy.total(), 1e-9 * manual);
  EXPECT_GE(manual, brute_force_min_energy(g, p) * (1.0 - 1e-12));
}

}  // namespace
}  // namespace noceas
