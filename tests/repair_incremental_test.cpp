// Differential tests of the incremental repair machinery (DESIGN.md §11):
// suffix evaluation against the full-rebuild escape hatch, enumeration
// variants, deterministic parallel accept order, and the lazy probe path of
// the level scheduler.  Everything here asserts *bit-identity* — the
// optimisations under test are licensed only because they are invisible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "src/audit/decision_log.hpp"
#include "src/core/eas.hpp"
#include "src/core/repair.hpp"
#include "src/core/timing.hpp"
#include "src/ctg/dag_algos.hpp"
#include "src/gen/tgff.hpp"

namespace noceas {
namespace {

Platform platform4x4() {
  static const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  return make_platform_for(catalog, 4, 4);
}

/// Category II style graph (tight deadlines, so repair usually has work),
/// downsized so a hundred differential runs stay fast.
TaskGraph seeded_graph(int seed, std::size_t tasks = 120) {
  static const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  TgffParams params = category_params(2, seed % 10);
  params.num_tasks = tasks;
  params.num_edges = 2 * tasks;
  params.seed = 1000 + static_cast<std::uint64_t>(seed);
  return generate_tgff_like(params, catalog);
}

Schedule base_schedule(const TaskGraph& g, const Platform& p) {
  EasOptions options;
  options.repair = false;
  return schedule_eas(g, p, options).schedule;
}

bool same_schedule(const Schedule& a, const Schedule& b) {
  if (a.tasks.size() != b.tasks.size() || a.comms.size() != b.comms.size()) return false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].pe != b.tasks[i].pe || a.tasks[i].start != b.tasks[i].start ||
        a.tasks[i].finish != b.tasks[i].finish)
      return false;
  }
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    if (a.comms[i].src_pe != b.comms[i].src_pe || a.comms[i].dst_pe != b.comms[i].dst_pe ||
        a.comms[i].start != b.comms[i].start || a.comms[i].duration != b.comms[i].duration)
      return false;
  }
  return true;
}

std::string stream_text(const audit::DecisionLog& log) {
  std::ostringstream os;
  log.write_jsonl(os);
  return os.str();
}

/// Scoped NOCEAS_REPAIR_FULL_REBUILD=1 (the differential escape hatch).
struct FullRebuildEnv {
  FullRebuildEnv() { ::setenv("NOCEAS_REPAIR_FULL_REBUILD", "1", 1); }
  ~FullRebuildEnv() { ::unsetenv("NOCEAS_REPAIR_FULL_REBUILD"); }
};

// ---------------------------------------------------------------------------
// Property: over many seeds, the incremental path produces byte-identical
// schedules AND byte-identical decision streams to from-scratch rebuilds.
// ---------------------------------------------------------------------------

TEST(RepairIncremental, HundredSeedsMatchFullRebuildBitForBit) {
  const Platform p = platform4x4();
  int had_misses = 0;
  int accepted_moves = 0;
  for (int seed = 0; seed < 100; ++seed) {
    const TaskGraph g = seeded_graph(seed);
    const Schedule base = base_schedule(g, p);

    audit::DecisionLog inc_log;
    RepairOptions inc_options;
    inc_options.decisions = &inc_log;
    const RepairResult inc = search_and_repair(g, p, base, inc_options);

    audit::DecisionLog full_log;
    Schedule full_schedule;
    RepairStats full_stats;
    {
      FullRebuildEnv env;
      RepairOptions full_options;
      full_options.decisions = &full_log;
      RepairResult full = search_and_repair(g, p, base, full_options);
      full_schedule = std::move(full.schedule);
      full_stats = full.stats;
    }

    EXPECT_TRUE(same_schedule(inc.schedule, full_schedule)) << "seed " << seed;
    EXPECT_EQ(stream_text(inc_log), stream_text(full_log)) << "seed " << seed;
    EXPECT_EQ(inc.stats.misses_after, full_stats.misses_after) << "seed " << seed;
    EXPECT_EQ(inc.stats.tardiness_after, full_stats.tardiness_after) << "seed " << seed;
    // The escape hatch must actually have disabled suffix reuse, and the
    // incremental path must have exercised it whenever moves were probed.
    EXPECT_EQ(full_stats.suffix_rebuilds, 0u) << "seed " << seed;
    if (inc.stats.misses_before > 0) ++had_misses;
    accepted_moves += inc.stats.lts_accepted + inc.stats.gtm_accepted;
  }
  // The suite is only meaningful if repair actually ran and accepted moves.
  EXPECT_GT(had_misses, 20);
  EXPECT_GT(accepted_moves, 0);
}

TEST(RepairIncremental, EnumerationVariantsMatchEscapeHatch) {
  const Platform p = platform4x4();
  struct Variant {
    bool prune;
    bool bound;
    bool fallback;
  };
  // {prune=false, bound=false} is the v1-exact enumeration (DESIGN.md §11.2).
  const Variant variants[] = {
      {true, true, false}, {true, true, true}, {true, false, false},
      {false, true, false}, {false, false, false}};
  for (int seed = 0; seed < 8; ++seed) {
    const TaskGraph g = seeded_graph(seed);
    const Schedule base = base_schedule(g, p);
    for (const Variant& v : variants) {
      RepairOptions options;
      options.prune = v.prune;
      options.bound = v.bound;
      options.fallback = v.fallback;
      const RepairResult inc = search_and_repair(g, p, base, options);
      Schedule full_schedule;
      {
        FullRebuildEnv env;
        full_schedule = search_and_repair(g, p, base, options).schedule;
      }
      EXPECT_TRUE(same_schedule(inc.schedule, full_schedule))
          << "seed " << seed << " prune=" << v.prune << " bound=" << v.bound
          << " fallback=" << v.fallback;
    }
  }
}

TEST(RepairIncremental, ParallelOnOffByteIdentical) {
  const Platform p = platform4x4();
  for (int seed = 0; seed < 8; ++seed) {
    const TaskGraph g = seeded_graph(seed);
    const Schedule base = base_schedule(g, p);
    audit::DecisionLog par_log;
    audit::DecisionLog ser_log;
    RepairOptions par_options;
    par_options.decisions = &par_log;
    RepairOptions ser_options;
    ser_options.parallel = false;
    ser_options.decisions = &ser_log;
    const RepairResult par = search_and_repair(g, p, base, par_options);
    const RepairResult ser = search_and_repair(g, p, base, ser_options);
    EXPECT_TRUE(same_schedule(par.schedule, ser.schedule)) << "seed " << seed;
    EXPECT_EQ(stream_text(par_log), stream_text(ser_log)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Suffix-rebuild edge cases, driven through TimingRebuilder directly.
// ---------------------------------------------------------------------------

/// First PE whose order admits swapping positions `pos` and `pos + 1`
/// (the later task must not be a descendant of the earlier one).  `pos` < 0
/// addresses the last adjacent pair of the order.  Returns false if no PE
/// qualifies.
bool find_adjacent_swap(const TaskGraph& g, const OrderedPlan& plan,
                        const ReachabilityMatrix& reach, int pos, PeId* pe_out,
                        std::size_t* pos_out) {
  for (std::size_t k = 0; k < plan.pe_order.size(); ++k) {
    const auto& order = plan.pe_order[k];
    // The last-pair case additionally needs a non-zero swap position so the
    // divergence cutoff is provably late (> 0) — the property under test.
    if (order.size() < (pos >= 0 ? 2u : 3u)) continue;
    const std::size_t i = pos >= 0 ? static_cast<std::size_t>(pos) : order.size() - 2;
    if (i + 1 >= order.size()) continue;
    if (reach.reachable(order[i], order[i + 1])) continue;
    *pe_out = PeId{k};
    *pos_out = i;
    return true;
  }
  return false;
}

OrderedPlan swapped(const OrderedPlan& plan, PeId pe, std::size_t pos) {
  OrderedPlan candidate = plan;
  std::swap(candidate.pe_order[pe.index()][pos], candidate.pe_order[pe.index()][pos + 1]);
  return candidate;
}

/// Asserts rebuild_suffix(candidate, cutoff) == a from-scratch rebuild of
/// the candidate, and that evaluate_suffix agrees with the real miss report.
void expect_suffix_matches_full(const TaskGraph& g, const Platform& p, TimingRebuilder& rb,
                                const OrderedPlan& candidate, std::size_t cutoff) {
  const auto suffix = rb.rebuild_suffix(candidate, cutoff);
  const auto full = rebuild_timing(g, p, candidate);
  ASSERT_EQ(suffix.has_value(), full.has_value());
  if (!suffix.has_value()) return;
  EXPECT_TRUE(same_schedule(*suffix, *full));
  const auto report = rb.evaluate_suffix(candidate, cutoff);
  ASSERT_TRUE(report.has_value());
  const MissReport real = deadline_misses(g, *full);
  EXPECT_EQ(report->miss_count, real.miss_count);
  EXPECT_EQ(report->total_tardiness, real.total_tardiness);
}

TEST(SuffixRebuild, SwapAtPositionZero) {
  const Platform p = platform4x4();
  const TaskGraph g = seeded_graph(3);
  const OrderedPlan plan = plan_from_schedule(base_schedule(g, p), p.num_pes());
  const ReachabilityMatrix reach(g);

  TimingRebuilder rb(g, p);
  ASSERT_TRUE(rb.rebuild(plan).has_value());

  PeId pe;
  std::size_t pos = 0;
  ASSERT_TRUE(find_adjacent_swap(g, plan, reach, 0, &pe, &pos));
  ASSERT_EQ(pos, 0u);
  // A swap of positions 0 and 1 can diverge as soon as the head pointer of
  // `pe` reaches position 0 — the earliest possible divergence of any move
  // on that PE.
  const std::size_t cutoff = rb.divergence_at(pe, 0);
  expect_suffix_matches_full(g, p, rb, swapped(plan, pe, 0), cutoff);
}

TEST(SuffixRebuild, SwapAtLastPosition) {
  const Platform p = platform4x4();
  const TaskGraph g = seeded_graph(4);
  const OrderedPlan plan = plan_from_schedule(base_schedule(g, p), p.num_pes());
  const ReachabilityMatrix reach(g);

  TimingRebuilder rb(g, p);
  ASSERT_TRUE(rb.rebuild(plan).has_value());

  PeId pe;
  std::size_t pos = 0;
  ASSERT_TRUE(find_adjacent_swap(g, plan, reach, -1, &pe, &pos));
  ASSERT_EQ(pos, plan.pe_order[pe.index()].size() - 2);
  const std::size_t cutoff = rb.divergence_at(pe, pos);
  // A swap of the last two tasks of a PE diverges very late; nearly the
  // whole base must be reused.
  EXPECT_GT(cutoff, 0u);
  expect_suffix_matches_full(g, p, rb, swapped(plan, pe, pos), cutoff);
  EXPECT_GT(rb.commits_reused(), 0u);
}

TEST(SuffixRebuild, BackToBackAcceptsRebaseCleanly) {
  const Platform p = platform4x4();
  const TaskGraph g = seeded_graph(5);
  const ReachabilityMatrix reach(g);

  OrderedPlan plan = plan_from_schedule(base_schedule(g, p), p.num_pes());
  TimingRebuilder rb(g, p);
  auto current = rb.rebuild(plan);
  ASSERT_TRUE(current.has_value());

  // Accept two successive moves: each time, verify the suffix rebuild of
  // the candidate against a from-scratch rebuild, then make the candidate
  // the new base exactly as the repair loop does (full rebuild + priority
  // refresh via plan extraction).
  for (int step = 0; step < 2; ++step) {
    PeId pe;
    std::size_t pos = 0;
    ASSERT_TRUE(find_adjacent_swap(g, plan, reach, step == 0 ? 0 : -1, &pe, &pos));
    const OrderedPlan candidate = swapped(plan, pe, pos);
    const std::size_t cutoff = rb.divergence_at(pe, pos);
    expect_suffix_matches_full(g, p, rb, candidate, cutoff);

    current = rb.rebuild(candidate);  // "accept": candidate becomes the base
    ASSERT_TRUE(current.has_value()) << "step " << step;
    plan = plan_from_schedule(*current, p.num_pes());
    plan.pe_order = candidate.pe_order;
    plan.assignment = candidate.assignment;
    current = rb.rebuild(plan);  // rebase on refreshed priorities
    ASSERT_TRUE(current.has_value()) << "step " << step;
  }
  EXPECT_GE(rb.full_rebuilds(), 4u);
  EXPECT_EQ(rb.suffix_rebuilds(), 2u);
}

TEST(SuffixRebuild, CutoffZeroDegeneratesToFullRebuild) {
  const Platform p = platform4x4();
  const TaskGraph g = seeded_graph(6);
  const OrderedPlan plan = plan_from_schedule(base_schedule(g, p), p.num_pes());
  const ReachabilityMatrix reach(g);

  TimingRebuilder rb(g, p);
  ASSERT_TRUE(rb.rebuild(plan).has_value());
  PeId pe;
  std::size_t pos = 0;
  ASSERT_TRUE(find_adjacent_swap(g, plan, reach, 0, &pe, &pos));
  expect_suffix_matches_full(g, p, rb, swapped(plan, pe, pos), 0);
}

// ---------------------------------------------------------------------------
// The lazy probe path of the level scheduler: a run without observability
// sinks consults only the probes the selection rule reads, but must place
// every task exactly like the eager batch path the sinks force.
// ---------------------------------------------------------------------------

TEST(LazyProbes, SinklessRunMatchesInstrumentedRun) {
  const Platform p = platform4x4();
  for (int seed = 0; seed < 10; ++seed) {
    const TaskGraph g = seeded_graph(seed);

    EasOptions lazy_options;  // no sinks: lazy feasibility scan
    const EasResult lazy = schedule_eas(g, p, lazy_options);

    audit::DecisionLog log;
    EasOptions eager_options;  // decision log attached: eager refresh
    eager_options.decisions = &log;
    const EasResult eager = schedule_eas(g, p, eager_options);

    EXPECT_TRUE(same_schedule(lazy.schedule, eager.schedule)) << "seed " << seed;
    EXPECT_EQ(lazy.misses.miss_count, eager.misses.miss_count) << "seed " << seed;
    EXPECT_DOUBLE_EQ(lazy.energy.total(), eager.energy.total()) << "seed " << seed;
  }
}

TEST(LazyProbes, CacheOffStillLazyAndIdentical) {
  const Platform p = platform4x4();
  const TaskGraph g = seeded_graph(2);
  EasOptions cached;
  EasOptions uncached;
  uncached.probe_cache = false;
  const EasResult a = schedule_eas(g, p, cached);
  const EasResult b = schedule_eas(g, p, uncached);
  EXPECT_TRUE(same_schedule(a.schedule, b.schedule));
}

}  // namespace
}  // namespace noceas
