// Unit + property tests for the DVS slack-reclamation extension.
#include <gtest/gtest.h>

#include "src/core/eas.hpp"
#include "src/dvs/slack_reclaim.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"

namespace noceas {
namespace {

TEST(DvsEnergy, NominalIsIdentity) {
  EXPECT_DOUBLE_EQ(dvs_energy(100.0, 1.0, 0.1), 100.0);
  EXPECT_DOUBLE_EQ(dvs_energy(100.0, 1.0, 0.0), 100.0);
}

TEST(DvsEnergy, QuadraticDynamicTerm) {
  // Pure dynamic energy: halving the speed quarters the energy.
  EXPECT_DOUBLE_EQ(dvs_energy(100.0, 0.5, 0.0), 25.0);
}

TEST(DvsEnergy, StaticTermPenalizesCrawling) {
  // With a large static fraction, very low speeds cost MORE than nominal.
  EXPECT_GT(dvs_energy(100.0, 0.1, 0.5), 100.0);
}

TEST(DvsEnergy, RejectsBadInputs) {
  EXPECT_THROW((void)dvs_energy(1.0, 0.0, 0.1), Error);
  EXPECT_THROW((void)dvs_energy(1.0, 1.5, 0.1), Error);
  EXPECT_THROW((void)dvs_energy(1.0, 0.5, -0.1), Error);
}

Platform platform2x2() { return make_mesh_platform(2, 2, {"A", "B", "C", "D"}, 10.0); }

TEST(ReclaimSlack, StretchesIntoDeadlineSlack) {
  // Single task, duration 10, deadline 100: slowest level that still fits.
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("t", {10, 10, 10, 10}, {100, 100, 100, 100}, 100);
  Schedule s(1, 0);
  s.tasks[0] = {PeId{0}, 0, 10};
  DvsOptions options;
  options.speeds = {1.0, 0.5, 0.25};
  options.static_fraction = 0.0;
  const DvsResult r = reclaim_slack(g, p, s, options);
  EXPECT_DOUBLE_EQ(r.speed[0], 0.25);  // 40 <= 100, energy 100/16
  EXPECT_EQ(r.finish[0], 40);
  EXPECT_DOUBLE_EQ(r.computation_after, 100.0 / 16.0);
  EXPECT_EQ(r.slowed_tasks, 1u);
  EXPECT_DOUBLE_EQ(r.saved(), 100.0 - 100.0 / 16.0);
}

TEST(ReclaimSlack, DeadlineBlocksStretching) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("t", {10, 10, 10, 10}, {100, 100, 100, 100}, 12);
  Schedule s(1, 0);
  s.tasks[0] = {PeId{0}, 0, 10};
  DvsOptions options;
  options.speeds = {1.0, 0.5};
  const DvsResult r = reclaim_slack(g, p, s, options);
  EXPECT_DOUBLE_EQ(r.speed[0], 1.0);  // 20 > 12: must stay nominal
  EXPECT_EQ(r.slowed_tasks, 0u);
  EXPECT_DOUBLE_EQ(r.saved(), 0.0);
}

TEST(ReclaimSlack, OutgoingTransactionSlotBlocksStretching) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("a", {10, 10, 10, 10}, {100, 100, 100, 100});
  g.add_task("b", {10, 10, 10, 10}, {100, 100, 100, 100});
  g.add_edge(TaskId{0}, TaskId{1}, 100);
  Schedule s(2, 1);
  s.tasks[0] = {PeId{0}, 0, 10};
  s.tasks[1] = {PeId{1}, 25, 35};
  s.comms[0] = {PeId{0}, PeId{1}, 15, 10};  // reserved at 15
  DvsOptions options;
  options.speeds = {1.0, 0.5};
  options.static_fraction = 0.0;
  const DvsResult r = reclaim_slack(g, p, s, options);
  // Stretching a to 20 would overrun the reserved slot start (15); the only
  // admissible level is nominal.
  EXPECT_DOUBLE_EQ(r.speed[0], 1.0);
  // b has no outgoing edges and no deadline: unlimited stretch to slowest.
  EXPECT_DOUBLE_EQ(r.speed[1], 0.5);
}

TEST(ReclaimSlack, LocalSuccessorStartBlocksStretching) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("a", {10, 10, 10, 10}, {100, 100, 100, 100});
  g.add_task("b", {10, 10, 10, 10}, {100, 100, 100, 100});
  g.add_edge(TaskId{0}, TaskId{1}, 100);
  Schedule s(2, 1);
  // Same tile: local delivery; b starts at 12.
  s.tasks[0] = {PeId{0}, 0, 10};
  s.tasks[1] = {PeId{0}, 12, 22};
  s.comms[0] = {PeId{0}, PeId{0}, 10, 0};
  DvsOptions options;
  options.speeds = {1.0, 0.9, 0.5};
  options.static_fraction = 0.0;
  const DvsResult r = reclaim_slack(g, p, s, options);
  // a may stretch only to 12 (b's start, also the PE-successor bound):
  // 10/0.9 -> 12 fits; 10/0.5 -> 20 does not.
  EXPECT_DOUBLE_EQ(r.speed[0], 0.9);
  EXPECT_EQ(r.finish[0], 12);
}

TEST(ReclaimSlack, StaticFractionSelectsInteriorOptimum) {
  // With alpha = 0.5, E(s) = e*(0.5 s^2 + 0.5/s): minimum near s = 0.79;
  // the 0.8 level must beat both 1.0 and 0.4.
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("t", {10, 10, 10, 10}, {100, 100, 100, 100});
  Schedule s(1, 0);
  s.tasks[0] = {PeId{0}, 0, 10};
  DvsOptions options;
  options.speeds = {1.0, 0.8, 0.4};
  options.static_fraction = 0.5;
  const DvsResult r = reclaim_slack(g, p, s, options);
  EXPECT_DOUBLE_EQ(r.speed[0], 0.8);
}

TEST(ReclaimSlack, RejectsBadOptions) {
  const Platform p = platform2x2();
  TaskGraph g(4);
  g.add_task("t", {10, 10, 10, 10}, {1, 1, 1, 1});
  Schedule s(1, 0);
  s.tasks[0] = {PeId{0}, 0, 10};
  DvsOptions options;
  options.speeds = {1.2};
  EXPECT_THROW((void)reclaim_slack(g, p, s, options), Error);
  Schedule incomplete(1, 0);
  EXPECT_THROW((void)reclaim_slack(g, p, incomplete, DvsOptions{}), Error);
}

// Property: on EAS schedules of random instances, reclamation (a) never
// increases energy, (b) never violates any bound it promises to respect.
class DvsSweep : public ::testing::TestWithParam<int> {};

TEST_P(DvsSweep, SoundOnEasSchedules) {
  static const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
  const Platform p = make_platform_for(catalog, 4, 4);
  TgffParams params = category_params(1, GetParam());
  params.num_tasks = 120;
  params.num_edges = 240;
  const TaskGraph g = generate_tgff_like(params, catalog);
  const EasResult eas = schedule_eas(g, p);

  const DvsResult r = reclaim_slack(g, p, eas.schedule);
  EXPECT_LE(r.computation_after, r.computation_before * (1.0 + 1e-12));
  EXPECT_NEAR(r.computation_before, eas.energy.computation, 1e-6 * r.computation_before);

  const auto orders = pe_orders(eas.schedule, p.num_pes());
  for (const auto& order : orders) {
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      // Stretched finish never runs into the next task on the same PE.
      EXPECT_LE(r.finish[order[i].index()], eas.schedule.at(order[i + 1]).start);
    }
  }
  for (TaskId t : g.all_tasks()) {
    if (g.task(t).has_deadline()) {
      EXPECT_LE(r.finish[t.index()], g.task(t).deadline);
    }
    EXPECT_GE(r.finish[t.index()], eas.schedule.at(t).finish);  // only stretched
    for (EdgeId e : g.out_edges(t)) {
      const CommPlacement& cp = eas.schedule.at(e);
      if (cp.uses_network()) {
        EXPECT_LE(r.finish[t.index()], cp.start);
      } else {
        EXPECT_LE(r.finish[t.index()], eas.schedule.at(g.edge(e).dst).start);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvsSweep, ::testing::Range(0, 6));

TEST(ReclaimSlack, SavesEnergyOnMsb) {
  const PeCatalog catalog = msb_catalog_3x3();
  const Platform p = msb_platform_3x3();
  const TaskGraph g = make_av_encdec(clip_foreman(), catalog);
  const EasResult eas = schedule_eas(g, p);
  const DvsResult r = reclaim_slack(g, p, eas.schedule);
  EXPECT_GT(r.saved(), 0.0);
  EXPECT_GT(r.slowed_tasks, 0u);
}

}  // namespace
}  // namespace noceas
