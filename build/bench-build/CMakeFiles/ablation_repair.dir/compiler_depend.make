# Empty compiler generated dependencies file for ablation_repair.
# This may be replaced when dependencies are built.
