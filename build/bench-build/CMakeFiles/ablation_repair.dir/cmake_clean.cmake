file(REMOVE_RECURSE
  "../bench/ablation_repair"
  "../bench/ablation_repair.pdb"
  "CMakeFiles/ablation_repair.dir/ablation_repair.cpp.o"
  "CMakeFiles/ablation_repair.dir/ablation_repair.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
