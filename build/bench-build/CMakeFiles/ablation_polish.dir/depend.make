# Empty dependencies file for ablation_polish.
# This may be replaced when dependencies are built.
