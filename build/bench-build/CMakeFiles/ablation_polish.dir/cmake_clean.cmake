file(REMOVE_RECURSE
  "../bench/ablation_polish"
  "../bench/ablation_polish.pdb"
  "CMakeFiles/ablation_polish.dir/ablation_polish.cpp.o"
  "CMakeFiles/ablation_polish.dir/ablation_polish.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
