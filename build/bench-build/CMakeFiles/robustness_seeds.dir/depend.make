# Empty dependencies file for robustness_seeds.
# This may be replaced when dependencies are built.
