file(REMOVE_RECURSE
  "../bench/robustness_seeds"
  "../bench/robustness_seeds.pdb"
  "CMakeFiles/robustness_seeds.dir/robustness_seeds.cpp.o"
  "CMakeFiles/robustness_seeds.dir/robustness_seeds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
