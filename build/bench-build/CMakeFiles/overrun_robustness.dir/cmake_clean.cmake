file(REMOVE_RECURSE
  "../bench/overrun_robustness"
  "../bench/overrun_robustness.pdb"
  "CMakeFiles/overrun_robustness.dir/overrun_robustness.cpp.o"
  "CMakeFiles/overrun_robustness.dir/overrun_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overrun_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
