# Empty dependencies file for overrun_robustness.
# This may be replaced when dependencies are built.
