file(REMOVE_RECURSE
  "../bench/table3_av_encdec"
  "../bench/table3_av_encdec.pdb"
  "CMakeFiles/table3_av_encdec.dir/table3_av_encdec.cpp.o"
  "CMakeFiles/table3_av_encdec.dir/table3_av_encdec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_av_encdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
