# Empty dependencies file for table3_av_encdec.
# This may be replaced when dependencies are built.
