file(REMOVE_RECURSE
  "../bench/fig6_category2"
  "../bench/fig6_category2.pdb"
  "CMakeFiles/fig6_category2.dir/fig6_category2.cpp.o"
  "CMakeFiles/fig6_category2.dir/fig6_category2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_category2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
