# Empty compiler generated dependencies file for fig6_category2.
# This may be replaced when dependencies are built.
