# Empty dependencies file for fig7_tradeoff.
# This may be replaced when dependencies are built.
