file(REMOVE_RECURSE
  "../bench/fig7_tradeoff"
  "../bench/fig7_tradeoff.pdb"
  "CMakeFiles/fig7_tradeoff.dir/fig7_tradeoff.cpp.o"
  "CMakeFiles/fig7_tradeoff.dir/fig7_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
