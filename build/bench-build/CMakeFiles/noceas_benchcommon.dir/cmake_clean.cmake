file(REMOVE_RECURSE
  "CMakeFiles/noceas_benchcommon.dir/experiment_common.cpp.o"
  "CMakeFiles/noceas_benchcommon.dir/experiment_common.cpp.o.d"
  "libnoceas_benchcommon.a"
  "libnoceas_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
