file(REMOVE_RECURSE
  "libnoceas_benchcommon.a"
)
