# Empty dependencies file for noceas_benchcommon.
# This may be replaced when dependencies are built.
