# Empty compiler generated dependencies file for table2_av_decoder.
# This may be replaced when dependencies are built.
