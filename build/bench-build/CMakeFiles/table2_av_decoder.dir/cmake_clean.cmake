file(REMOVE_RECURSE
  "../bench/table2_av_decoder"
  "../bench/table2_av_decoder.pdb"
  "CMakeFiles/table2_av_decoder.dir/table2_av_decoder.cpp.o"
  "CMakeFiles/table2_av_decoder.dir/table2_av_decoder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_av_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
