file(REMOVE_RECURSE
  "../bench/ablation_decoupled"
  "../bench/ablation_decoupled.pdb"
  "CMakeFiles/ablation_decoupled.dir/ablation_decoupled.cpp.o"
  "CMakeFiles/ablation_decoupled.dir/ablation_decoupled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decoupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
