# Empty dependencies file for ablation_decoupled.
# This may be replaced when dependencies are built.
