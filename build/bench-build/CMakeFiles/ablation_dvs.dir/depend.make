# Empty dependencies file for ablation_dvs.
# This may be replaced when dependencies are built.
