file(REMOVE_RECURSE
  "../bench/ablation_dvs"
  "../bench/ablation_dvs.pdb"
  "CMakeFiles/ablation_dvs.dir/ablation_dvs.cpp.o"
  "CMakeFiles/ablation_dvs.dir/ablation_dvs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
