file(REMOVE_RECURSE
  "../bench/runtime_scaling"
  "../bench/runtime_scaling.pdb"
  "CMakeFiles/runtime_scaling.dir/runtime_scaling.cpp.o"
  "CMakeFiles/runtime_scaling.dir/runtime_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
