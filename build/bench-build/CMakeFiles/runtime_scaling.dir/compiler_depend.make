# Empty compiler generated dependencies file for runtime_scaling.
# This may be replaced when dependencies are built.
