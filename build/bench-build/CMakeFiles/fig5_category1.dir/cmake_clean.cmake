file(REMOVE_RECURSE
  "../bench/fig5_category1"
  "../bench/fig5_category1.pdb"
  "CMakeFiles/fig5_category1.dir/fig5_category1.cpp.o"
  "CMakeFiles/fig5_category1.dir/fig5_category1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_category1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
