# Empty dependencies file for fig5_category1.
# This may be replaced when dependencies are built.
