# Empty dependencies file for pipeline_throughput.
# This may be replaced when dependencies are built.
