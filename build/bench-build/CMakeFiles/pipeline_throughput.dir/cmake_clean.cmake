file(REMOVE_RECURSE
  "../bench/pipeline_throughput"
  "../bench/pipeline_throughput.pdb"
  "CMakeFiles/pipeline_throughput.dir/pipeline_throughput.cpp.o"
  "CMakeFiles/pipeline_throughput.dir/pipeline_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
