# Empty dependencies file for sim_validation.
# This may be replaced when dependencies are built.
