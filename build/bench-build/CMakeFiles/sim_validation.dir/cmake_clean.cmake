file(REMOVE_RECURSE
  "../bench/sim_validation"
  "../bench/sim_validation.pdb"
  "CMakeFiles/sim_validation.dir/sim_validation.cpp.o"
  "CMakeFiles/sim_validation.dir/sim_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
