# Empty compiler generated dependencies file for extensions.
# This may be replaced when dependencies are built.
