file(REMOVE_RECURSE
  "../bench/extensions"
  "../bench/extensions.pdb"
  "CMakeFiles/extensions.dir/extensions.cpp.o"
  "CMakeFiles/extensions.dir/extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
