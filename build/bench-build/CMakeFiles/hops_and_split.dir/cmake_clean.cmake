file(REMOVE_RECURSE
  "../bench/hops_and_split"
  "../bench/hops_and_split.pdb"
  "CMakeFiles/hops_and_split.dir/hops_and_split.cpp.o"
  "CMakeFiles/hops_and_split.dir/hops_and_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hops_and_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
