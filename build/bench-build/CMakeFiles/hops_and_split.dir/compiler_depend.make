# Empty compiler generated dependencies file for hops_and_split.
# This may be replaced when dependencies are built.
