
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/hops_and_split.cpp" "bench-build/CMakeFiles/hops_and_split.dir/hops_and_split.cpp.o" "gcc" "bench-build/CMakeFiles/hops_and_split.dir/hops_and_split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/noceas_benchcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/noceas_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/msb/CMakeFiles/noceas_msb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/noceas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dvs/CMakeFiles/noceas_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/noceas_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/noceas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/noceas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ctg/CMakeFiles/noceas_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/noceas_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/noceas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
