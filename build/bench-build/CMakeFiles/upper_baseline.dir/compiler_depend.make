# Empty compiler generated dependencies file for upper_baseline.
# This may be replaced when dependencies are built.
