file(REMOVE_RECURSE
  "../bench/upper_baseline"
  "../bench/upper_baseline.pdb"
  "CMakeFiles/upper_baseline.dir/upper_baseline.cpp.o"
  "CMakeFiles/upper_baseline.dir/upper_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upper_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
