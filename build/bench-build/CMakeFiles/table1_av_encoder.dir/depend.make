# Empty dependencies file for table1_av_encoder.
# This may be replaced when dependencies are built.
