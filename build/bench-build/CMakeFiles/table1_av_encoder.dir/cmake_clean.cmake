file(REMOVE_RECURSE
  "../bench/table1_av_encoder"
  "../bench/table1_av_encoder.pdb"
  "CMakeFiles/table1_av_encoder.dir/table1_av_encoder.cpp.o"
  "CMakeFiles/table1_av_encoder.dir/table1_av_encoder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_av_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
