file(REMOVE_RECURSE
  "../bench/ablation_weights"
  "../bench/ablation_weights.pdb"
  "CMakeFiles/ablation_weights.dir/ablation_weights.cpp.o"
  "CMakeFiles/ablation_weights.dir/ablation_weights.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
