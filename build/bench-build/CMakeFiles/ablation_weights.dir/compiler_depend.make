# Empty compiler generated dependencies file for ablation_weights.
# This may be replaced when dependencies are built.
