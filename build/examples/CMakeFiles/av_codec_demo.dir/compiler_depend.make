# Empty compiler generated dependencies file for av_codec_demo.
# This may be replaced when dependencies are built.
