file(REMOVE_RECURSE
  "CMakeFiles/av_codec_demo.dir/av_codec_demo.cpp.o"
  "CMakeFiles/av_codec_demo.dir/av_codec_demo.cpp.o.d"
  "av_codec_demo"
  "av_codec_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_codec_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
