file(REMOVE_RECURSE
  "CMakeFiles/pipeline_demo.dir/pipeline_demo.cpp.o"
  "CMakeFiles/pipeline_demo.dir/pipeline_demo.cpp.o.d"
  "pipeline_demo"
  "pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
