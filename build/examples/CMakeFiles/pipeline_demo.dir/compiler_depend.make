# Empty compiler generated dependencies file for pipeline_demo.
# This may be replaced when dependencies are built.
