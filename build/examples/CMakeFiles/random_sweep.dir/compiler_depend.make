# Empty compiler generated dependencies file for random_sweep.
# This may be replaced when dependencies are built.
