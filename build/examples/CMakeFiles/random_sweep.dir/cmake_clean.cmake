file(REMOVE_RECURSE
  "CMakeFiles/random_sweep.dir/random_sweep.cpp.o"
  "CMakeFiles/random_sweep.dir/random_sweep.cpp.o.d"
  "random_sweep"
  "random_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
