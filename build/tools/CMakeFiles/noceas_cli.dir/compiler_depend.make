# Empty compiler generated dependencies file for noceas_cli.
# This may be replaced when dependencies are built.
