file(REMOVE_RECURSE
  "CMakeFiles/noceas_cli.dir/noceas_cli.cpp.o"
  "CMakeFiles/noceas_cli.dir/noceas_cli.cpp.o.d"
  "noceas_cli"
  "noceas_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
