file(REMOVE_RECURSE
  "CMakeFiles/noceas_util.dir/rng.cpp.o"
  "CMakeFiles/noceas_util.dir/rng.cpp.o.d"
  "CMakeFiles/noceas_util.dir/stats.cpp.o"
  "CMakeFiles/noceas_util.dir/stats.cpp.o.d"
  "CMakeFiles/noceas_util.dir/table.cpp.o"
  "CMakeFiles/noceas_util.dir/table.cpp.o.d"
  "libnoceas_util.a"
  "libnoceas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
