file(REMOVE_RECURSE
  "libnoceas_util.a"
)
