# Empty compiler generated dependencies file for noceas_util.
# This may be replaced when dependencies are built.
