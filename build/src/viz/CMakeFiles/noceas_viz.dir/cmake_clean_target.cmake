file(REMOVE_RECURSE
  "libnoceas_viz.a"
)
