file(REMOVE_RECURSE
  "CMakeFiles/noceas_viz.dir/gantt_svg.cpp.o"
  "CMakeFiles/noceas_viz.dir/gantt_svg.cpp.o.d"
  "libnoceas_viz.a"
  "libnoceas_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
