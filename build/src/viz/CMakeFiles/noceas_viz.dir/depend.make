# Empty dependencies file for noceas_viz.
# This may be replaced when dependencies are built.
