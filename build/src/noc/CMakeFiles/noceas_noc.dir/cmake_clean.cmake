file(REMOVE_RECURSE
  "CMakeFiles/noceas_noc.dir/graph_topology.cpp.o"
  "CMakeFiles/noceas_noc.dir/graph_topology.cpp.o.d"
  "CMakeFiles/noceas_noc.dir/platform.cpp.o"
  "CMakeFiles/noceas_noc.dir/platform.cpp.o.d"
  "CMakeFiles/noceas_noc.dir/platform_io.cpp.o"
  "CMakeFiles/noceas_noc.dir/platform_io.cpp.o.d"
  "CMakeFiles/noceas_noc.dir/routing.cpp.o"
  "CMakeFiles/noceas_noc.dir/routing.cpp.o.d"
  "CMakeFiles/noceas_noc.dir/topology.cpp.o"
  "CMakeFiles/noceas_noc.dir/topology.cpp.o.d"
  "libnoceas_noc.a"
  "libnoceas_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
