# Empty dependencies file for noceas_noc.
# This may be replaced when dependencies are built.
