
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/graph_topology.cpp" "src/noc/CMakeFiles/noceas_noc.dir/graph_topology.cpp.o" "gcc" "src/noc/CMakeFiles/noceas_noc.dir/graph_topology.cpp.o.d"
  "/root/repo/src/noc/platform.cpp" "src/noc/CMakeFiles/noceas_noc.dir/platform.cpp.o" "gcc" "src/noc/CMakeFiles/noceas_noc.dir/platform.cpp.o.d"
  "/root/repo/src/noc/platform_io.cpp" "src/noc/CMakeFiles/noceas_noc.dir/platform_io.cpp.o" "gcc" "src/noc/CMakeFiles/noceas_noc.dir/platform_io.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/noceas_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/noceas_noc.dir/routing.cpp.o.d"
  "/root/repo/src/noc/topology.cpp" "src/noc/CMakeFiles/noceas_noc.dir/topology.cpp.o" "gcc" "src/noc/CMakeFiles/noceas_noc.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/noceas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
