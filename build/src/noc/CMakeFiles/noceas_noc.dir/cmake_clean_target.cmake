file(REMOVE_RECURSE
  "libnoceas_noc.a"
)
