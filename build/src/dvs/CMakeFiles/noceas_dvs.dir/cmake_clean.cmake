file(REMOVE_RECURSE
  "CMakeFiles/noceas_dvs.dir/slack_reclaim.cpp.o"
  "CMakeFiles/noceas_dvs.dir/slack_reclaim.cpp.o.d"
  "libnoceas_dvs.a"
  "libnoceas_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
