# Empty compiler generated dependencies file for noceas_dvs.
# This may be replaced when dependencies are built.
