file(REMOVE_RECURSE
  "libnoceas_dvs.a"
)
