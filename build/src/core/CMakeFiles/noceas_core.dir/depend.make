# Empty dependencies file for noceas_core.
# This may be replaced when dependencies are built.
