# Empty compiler generated dependencies file for noceas_core.
# This may be replaced when dependencies are built.
