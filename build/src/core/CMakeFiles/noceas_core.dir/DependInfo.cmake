
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_scheduler.cpp" "src/core/CMakeFiles/noceas_core.dir/comm_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/comm_scheduler.cpp.o.d"
  "/root/repo/src/core/eas.cpp" "src/core/CMakeFiles/noceas_core.dir/eas.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/eas.cpp.o.d"
  "/root/repo/src/core/list_common.cpp" "src/core/CMakeFiles/noceas_core.dir/list_common.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/list_common.cpp.o.d"
  "/root/repo/src/core/polish.cpp" "src/core/CMakeFiles/noceas_core.dir/polish.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/polish.cpp.o.d"
  "/root/repo/src/core/repair.cpp" "src/core/CMakeFiles/noceas_core.dir/repair.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/repair.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/noceas_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_table.cpp" "src/core/CMakeFiles/noceas_core.dir/schedule_table.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/schedule_table.cpp.o.d"
  "/root/repo/src/core/slack_budget.cpp" "src/core/CMakeFiles/noceas_core.dir/slack_budget.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/slack_budget.cpp.o.d"
  "/root/repo/src/core/timing.cpp" "src/core/CMakeFiles/noceas_core.dir/timing.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/timing.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/noceas_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/noceas_core.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctg/CMakeFiles/noceas_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/noceas_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/noceas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
