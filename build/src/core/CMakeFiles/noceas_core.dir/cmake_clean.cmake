file(REMOVE_RECURSE
  "CMakeFiles/noceas_core.dir/comm_scheduler.cpp.o"
  "CMakeFiles/noceas_core.dir/comm_scheduler.cpp.o.d"
  "CMakeFiles/noceas_core.dir/eas.cpp.o"
  "CMakeFiles/noceas_core.dir/eas.cpp.o.d"
  "CMakeFiles/noceas_core.dir/list_common.cpp.o"
  "CMakeFiles/noceas_core.dir/list_common.cpp.o.d"
  "CMakeFiles/noceas_core.dir/polish.cpp.o"
  "CMakeFiles/noceas_core.dir/polish.cpp.o.d"
  "CMakeFiles/noceas_core.dir/repair.cpp.o"
  "CMakeFiles/noceas_core.dir/repair.cpp.o.d"
  "CMakeFiles/noceas_core.dir/schedule.cpp.o"
  "CMakeFiles/noceas_core.dir/schedule.cpp.o.d"
  "CMakeFiles/noceas_core.dir/schedule_table.cpp.o"
  "CMakeFiles/noceas_core.dir/schedule_table.cpp.o.d"
  "CMakeFiles/noceas_core.dir/slack_budget.cpp.o"
  "CMakeFiles/noceas_core.dir/slack_budget.cpp.o.d"
  "CMakeFiles/noceas_core.dir/timing.cpp.o"
  "CMakeFiles/noceas_core.dir/timing.cpp.o.d"
  "CMakeFiles/noceas_core.dir/validator.cpp.o"
  "CMakeFiles/noceas_core.dir/validator.cpp.o.d"
  "libnoceas_core.a"
  "libnoceas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
