file(REMOVE_RECURSE
  "libnoceas_core.a"
)
