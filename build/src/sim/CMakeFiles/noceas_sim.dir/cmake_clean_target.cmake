file(REMOVE_RECURSE
  "libnoceas_sim.a"
)
