file(REMOVE_RECURSE
  "CMakeFiles/noceas_sim.dir/wormhole_sim.cpp.o"
  "CMakeFiles/noceas_sim.dir/wormhole_sim.cpp.o.d"
  "libnoceas_sim.a"
  "libnoceas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
