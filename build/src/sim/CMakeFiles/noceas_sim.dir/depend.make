# Empty dependencies file for noceas_sim.
# This may be replaced when dependencies are built.
