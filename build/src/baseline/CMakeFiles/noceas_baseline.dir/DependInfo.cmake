
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dls.cpp" "src/baseline/CMakeFiles/noceas_baseline.dir/dls.cpp.o" "gcc" "src/baseline/CMakeFiles/noceas_baseline.dir/dls.cpp.o.d"
  "/root/repo/src/baseline/edf.cpp" "src/baseline/CMakeFiles/noceas_baseline.dir/edf.cpp.o" "gcc" "src/baseline/CMakeFiles/noceas_baseline.dir/edf.cpp.o.d"
  "/root/repo/src/baseline/greedy_energy.cpp" "src/baseline/CMakeFiles/noceas_baseline.dir/greedy_energy.cpp.o" "gcc" "src/baseline/CMakeFiles/noceas_baseline.dir/greedy_energy.cpp.o.d"
  "/root/repo/src/baseline/map_then_schedule.cpp" "src/baseline/CMakeFiles/noceas_baseline.dir/map_then_schedule.cpp.o" "gcc" "src/baseline/CMakeFiles/noceas_baseline.dir/map_then_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/noceas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ctg/CMakeFiles/noceas_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/noceas_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/noceas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
