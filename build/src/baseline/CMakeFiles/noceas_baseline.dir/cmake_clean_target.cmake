file(REMOVE_RECURSE
  "libnoceas_baseline.a"
)
