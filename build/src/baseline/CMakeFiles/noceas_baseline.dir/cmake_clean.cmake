file(REMOVE_RECURSE
  "CMakeFiles/noceas_baseline.dir/dls.cpp.o"
  "CMakeFiles/noceas_baseline.dir/dls.cpp.o.d"
  "CMakeFiles/noceas_baseline.dir/edf.cpp.o"
  "CMakeFiles/noceas_baseline.dir/edf.cpp.o.d"
  "CMakeFiles/noceas_baseline.dir/greedy_energy.cpp.o"
  "CMakeFiles/noceas_baseline.dir/greedy_energy.cpp.o.d"
  "CMakeFiles/noceas_baseline.dir/map_then_schedule.cpp.o"
  "CMakeFiles/noceas_baseline.dir/map_then_schedule.cpp.o.d"
  "libnoceas_baseline.a"
  "libnoceas_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
