# Empty compiler generated dependencies file for noceas_baseline.
# This may be replaced when dependencies are built.
