file(REMOVE_RECURSE
  "libnoceas_opt.a"
)
