file(REMOVE_RECURSE
  "CMakeFiles/noceas_opt.dir/annealing.cpp.o"
  "CMakeFiles/noceas_opt.dir/annealing.cpp.o.d"
  "libnoceas_opt.a"
  "libnoceas_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
