# Empty dependencies file for noceas_opt.
# This may be replaced when dependencies are built.
