file(REMOVE_RECURSE
  "libnoceas_msb.a"
)
