file(REMOVE_RECURSE
  "CMakeFiles/noceas_msb.dir/msb.cpp.o"
  "CMakeFiles/noceas_msb.dir/msb.cpp.o.d"
  "libnoceas_msb.a"
  "libnoceas_msb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_msb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
