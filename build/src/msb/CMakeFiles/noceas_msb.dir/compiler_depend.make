# Empty compiler generated dependencies file for noceas_msb.
# This may be replaced when dependencies are built.
