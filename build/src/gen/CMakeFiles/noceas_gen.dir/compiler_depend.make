# Empty compiler generated dependencies file for noceas_gen.
# This may be replaced when dependencies are built.
