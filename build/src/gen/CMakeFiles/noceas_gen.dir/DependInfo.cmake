
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/hetero.cpp" "src/gen/CMakeFiles/noceas_gen.dir/hetero.cpp.o" "gcc" "src/gen/CMakeFiles/noceas_gen.dir/hetero.cpp.o.d"
  "/root/repo/src/gen/tgff.cpp" "src/gen/CMakeFiles/noceas_gen.dir/tgff.cpp.o" "gcc" "src/gen/CMakeFiles/noceas_gen.dir/tgff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctg/CMakeFiles/noceas_ctg.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/noceas_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/noceas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
