file(REMOVE_RECURSE
  "CMakeFiles/noceas_gen.dir/hetero.cpp.o"
  "CMakeFiles/noceas_gen.dir/hetero.cpp.o.d"
  "CMakeFiles/noceas_gen.dir/tgff.cpp.o"
  "CMakeFiles/noceas_gen.dir/tgff.cpp.o.d"
  "libnoceas_gen.a"
  "libnoceas_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
