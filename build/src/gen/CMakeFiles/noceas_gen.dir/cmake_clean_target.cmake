file(REMOVE_RECURSE
  "libnoceas_gen.a"
)
