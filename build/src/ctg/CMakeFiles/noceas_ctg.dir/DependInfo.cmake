
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctg/dag_algos.cpp" "src/ctg/CMakeFiles/noceas_ctg.dir/dag_algos.cpp.o" "gcc" "src/ctg/CMakeFiles/noceas_ctg.dir/dag_algos.cpp.o.d"
  "/root/repo/src/ctg/serialize.cpp" "src/ctg/CMakeFiles/noceas_ctg.dir/serialize.cpp.o" "gcc" "src/ctg/CMakeFiles/noceas_ctg.dir/serialize.cpp.o.d"
  "/root/repo/src/ctg/task_graph.cpp" "src/ctg/CMakeFiles/noceas_ctg.dir/task_graph.cpp.o" "gcc" "src/ctg/CMakeFiles/noceas_ctg.dir/task_graph.cpp.o.d"
  "/root/repo/src/ctg/unroll.cpp" "src/ctg/CMakeFiles/noceas_ctg.dir/unroll.cpp.o" "gcc" "src/ctg/CMakeFiles/noceas_ctg.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/noceas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
