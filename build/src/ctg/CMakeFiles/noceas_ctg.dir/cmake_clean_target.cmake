file(REMOVE_RECURSE
  "libnoceas_ctg.a"
)
