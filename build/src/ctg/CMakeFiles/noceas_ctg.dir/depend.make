# Empty dependencies file for noceas_ctg.
# This may be replaced when dependencies are built.
