file(REMOVE_RECURSE
  "CMakeFiles/noceas_ctg.dir/dag_algos.cpp.o"
  "CMakeFiles/noceas_ctg.dir/dag_algos.cpp.o.d"
  "CMakeFiles/noceas_ctg.dir/serialize.cpp.o"
  "CMakeFiles/noceas_ctg.dir/serialize.cpp.o.d"
  "CMakeFiles/noceas_ctg.dir/task_graph.cpp.o"
  "CMakeFiles/noceas_ctg.dir/task_graph.cpp.o.d"
  "CMakeFiles/noceas_ctg.dir/unroll.cpp.o"
  "CMakeFiles/noceas_ctg.dir/unroll.cpp.o.d"
  "libnoceas_ctg.a"
  "libnoceas_ctg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noceas_ctg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
