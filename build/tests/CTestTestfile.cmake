# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ctg_test[1]_include.cmake")
include("/root/repo/build/tests/dag_algos_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/energy_platform_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_table_test[1]_include.cmake")
include("/root/repo/build/tests/comm_sched_test[1]_include.cmake")
include("/root/repo/build/tests/slack_budget_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/eas_test[1]_include.cmake")
include("/root/repo/build/tests/timing_repair_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/validator_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/msb_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/optimality_test[1]_include.cmake")
include("/root/repo/build/tests/dvs_test[1]_include.cmake")
include("/root/repo/build/tests/unroll_test[1]_include.cmake")
include("/root/repo/build/tests/graph_topology_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/platform_io_test[1]_include.cmake")
include("/root/repo/build/tests/map_then_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/list_common_test[1]_include.cmake")
include("/root/repo/build/tests/polish_test[1]_include.cmake")
include("/root/repo/build/tests/annealing_test[1]_include.cmake")
