file(REMOVE_RECURSE
  "CMakeFiles/annealing_test.dir/annealing_test.cpp.o"
  "CMakeFiles/annealing_test.dir/annealing_test.cpp.o.d"
  "annealing_test"
  "annealing_test.pdb"
  "annealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
