# Empty compiler generated dependencies file for annealing_test.
# This may be replaced when dependencies are built.
