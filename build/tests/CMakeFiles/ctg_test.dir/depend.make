# Empty dependencies file for ctg_test.
# This may be replaced when dependencies are built.
