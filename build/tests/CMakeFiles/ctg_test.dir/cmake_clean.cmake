file(REMOVE_RECURSE
  "CMakeFiles/ctg_test.dir/ctg_test.cpp.o"
  "CMakeFiles/ctg_test.dir/ctg_test.cpp.o.d"
  "ctg_test"
  "ctg_test.pdb"
  "ctg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
