file(REMOVE_RECURSE
  "CMakeFiles/polish_test.dir/polish_test.cpp.o"
  "CMakeFiles/polish_test.dir/polish_test.cpp.o.d"
  "polish_test"
  "polish_test.pdb"
  "polish_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polish_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
