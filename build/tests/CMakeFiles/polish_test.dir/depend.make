# Empty dependencies file for polish_test.
# This may be replaced when dependencies are built.
