# Empty dependencies file for unroll_test.
# This may be replaced when dependencies are built.
