# Empty dependencies file for comm_sched_test.
# This may be replaced when dependencies are built.
