file(REMOVE_RECURSE
  "CMakeFiles/comm_sched_test.dir/comm_sched_test.cpp.o"
  "CMakeFiles/comm_sched_test.dir/comm_sched_test.cpp.o.d"
  "comm_sched_test"
  "comm_sched_test.pdb"
  "comm_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
