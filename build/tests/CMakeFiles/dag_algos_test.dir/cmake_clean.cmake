file(REMOVE_RECURSE
  "CMakeFiles/dag_algos_test.dir/dag_algos_test.cpp.o"
  "CMakeFiles/dag_algos_test.dir/dag_algos_test.cpp.o.d"
  "dag_algos_test"
  "dag_algos_test.pdb"
  "dag_algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
