# Empty dependencies file for dag_algos_test.
# This may be replaced when dependencies are built.
