# Empty dependencies file for validator_test.
# This may be replaced when dependencies are built.
