file(REMOVE_RECURSE
  "CMakeFiles/validator_test.dir/validator_test.cpp.o"
  "CMakeFiles/validator_test.dir/validator_test.cpp.o.d"
  "validator_test"
  "validator_test.pdb"
  "validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
