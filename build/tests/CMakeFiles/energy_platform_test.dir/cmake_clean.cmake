file(REMOVE_RECURSE
  "CMakeFiles/energy_platform_test.dir/energy_platform_test.cpp.o"
  "CMakeFiles/energy_platform_test.dir/energy_platform_test.cpp.o.d"
  "energy_platform_test"
  "energy_platform_test.pdb"
  "energy_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
