# Empty dependencies file for energy_platform_test.
# This may be replaced when dependencies are built.
