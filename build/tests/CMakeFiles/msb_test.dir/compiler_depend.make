# Empty compiler generated dependencies file for msb_test.
# This may be replaced when dependencies are built.
