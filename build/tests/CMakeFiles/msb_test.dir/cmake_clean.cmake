file(REMOVE_RECURSE
  "CMakeFiles/msb_test.dir/msb_test.cpp.o"
  "CMakeFiles/msb_test.dir/msb_test.cpp.o.d"
  "msb_test"
  "msb_test.pdb"
  "msb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
