# Empty compiler generated dependencies file for optimality_test.
# This may be replaced when dependencies are built.
