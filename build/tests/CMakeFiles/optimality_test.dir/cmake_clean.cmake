file(REMOVE_RECURSE
  "CMakeFiles/optimality_test.dir/optimality_test.cpp.o"
  "CMakeFiles/optimality_test.dir/optimality_test.cpp.o.d"
  "optimality_test"
  "optimality_test.pdb"
  "optimality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
