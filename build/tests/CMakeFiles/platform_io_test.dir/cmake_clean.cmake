file(REMOVE_RECURSE
  "CMakeFiles/platform_io_test.dir/platform_io_test.cpp.o"
  "CMakeFiles/platform_io_test.dir/platform_io_test.cpp.o.d"
  "platform_io_test"
  "platform_io_test.pdb"
  "platform_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
