# Empty dependencies file for platform_io_test.
# This may be replaced when dependencies are built.
