# Empty compiler generated dependencies file for routing_test.
# This may be replaced when dependencies are built.
