# Empty dependencies file for slack_budget_test.
# This may be replaced when dependencies are built.
