file(REMOVE_RECURSE
  "CMakeFiles/slack_budget_test.dir/slack_budget_test.cpp.o"
  "CMakeFiles/slack_budget_test.dir/slack_budget_test.cpp.o.d"
  "slack_budget_test"
  "slack_budget_test.pdb"
  "slack_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slack_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
