file(REMOVE_RECURSE
  "CMakeFiles/map_then_schedule_test.dir/map_then_schedule_test.cpp.o"
  "CMakeFiles/map_then_schedule_test.dir/map_then_schedule_test.cpp.o.d"
  "map_then_schedule_test"
  "map_then_schedule_test.pdb"
  "map_then_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_then_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
