# Empty compiler generated dependencies file for map_then_schedule_test.
# This may be replaced when dependencies are built.
