# Empty compiler generated dependencies file for eas_test.
# This may be replaced when dependencies are built.
