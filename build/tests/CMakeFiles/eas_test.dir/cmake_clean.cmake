file(REMOVE_RECURSE
  "CMakeFiles/eas_test.dir/eas_test.cpp.o"
  "CMakeFiles/eas_test.dir/eas_test.cpp.o.d"
  "eas_test"
  "eas_test.pdb"
  "eas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
