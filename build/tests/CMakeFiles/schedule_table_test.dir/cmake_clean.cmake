file(REMOVE_RECURSE
  "CMakeFiles/schedule_table_test.dir/schedule_table_test.cpp.o"
  "CMakeFiles/schedule_table_test.dir/schedule_table_test.cpp.o.d"
  "schedule_table_test"
  "schedule_table_test.pdb"
  "schedule_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
