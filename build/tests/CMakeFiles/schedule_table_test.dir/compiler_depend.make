# Empty compiler generated dependencies file for schedule_table_test.
# This may be replaced when dependencies are built.
