file(REMOVE_RECURSE
  "CMakeFiles/graph_topology_test.dir/graph_topology_test.cpp.o"
  "CMakeFiles/graph_topology_test.dir/graph_topology_test.cpp.o.d"
  "graph_topology_test"
  "graph_topology_test.pdb"
  "graph_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
