file(REMOVE_RECURSE
  "CMakeFiles/timing_repair_test.dir/timing_repair_test.cpp.o"
  "CMakeFiles/timing_repair_test.dir/timing_repair_test.cpp.o.d"
  "timing_repair_test"
  "timing_repair_test.pdb"
  "timing_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
