# Empty compiler generated dependencies file for timing_repair_test.
# This may be replaced when dependencies are built.
