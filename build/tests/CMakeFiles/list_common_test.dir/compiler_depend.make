# Empty compiler generated dependencies file for list_common_test.
# This may be replaced when dependencies are built.
