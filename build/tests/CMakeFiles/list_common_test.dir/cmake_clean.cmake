file(REMOVE_RECURSE
  "CMakeFiles/list_common_test.dir/list_common_test.cpp.o"
  "CMakeFiles/list_common_test.dir/list_common_test.cpp.o.d"
  "list_common_test"
  "list_common_test.pdb"
  "list_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
