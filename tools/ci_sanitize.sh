#!/usr/bin/env bash
# Sanitizer CI for the scheduler library.
#
# Builds the full test suite twice under NOCEAS_SANITIZE and runs tier-1
# ctest under each instrumentation:
#   1. address,undefined — whole suite (memory errors, UB in the schedulers)
#   2. thread            — the probe/thread-pool tests, which exercise the
#                          parallel F(i,k) evaluation path of ProbeEngine
#
# Usage: tools/ci_sanitize.sh [build-dir-prefix]   (default: build-san)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"

configure_and_test() {
  local dir="$1" sanitize="$2" test_filter="${3:-}"
  echo "==> [$sanitize] configuring $dir"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNOCEAS_SANITIZE="$sanitize" \
    -DNOCEAS_BUILD_BENCH=OFF \
    -DNOCEAS_BUILD_EXAMPLES=OFF >/dev/null
  echo "==> [$sanitize] building"
  cmake --build "$dir" -j "$(nproc)" >/dev/null
  echo "==> [$sanitize] testing ${test_filter:+(filter: $test_filter)}"
  if [[ -n "$test_filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -R "$test_filter"
  else
    ctest --test-dir "$dir" --output-on-failure
  fi
}

# ASan+UBSan over the whole suite.
configure_and_test "${prefix}-asan" "address,undefined"

# TSan over the tests that drive the thread pool / parallel probe path.
# halt_on_error makes a race fail the ctest run instead of just logging.
TSAN_OPTIONS="halt_on_error=1" \
  configure_and_test "${prefix}-tsan" "thread" "ProbeCache|ProbeEngine|ThreadPool|TentativeTables|list_common"

echo "==> sanitize CI passed"
