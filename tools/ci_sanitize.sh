#!/usr/bin/env bash
# Sanitizer CI for the scheduler library.
#
# Builds the full test suite twice under NOCEAS_SANITIZE and runs tier-1
# ctest under each instrumentation:
#   1. address,undefined — whole suite (memory errors, UB in the schedulers)
#   2. thread            — the probe/thread-pool/obs tests, which exercise
#                          the parallel F(i,k) evaluation path of ProbeEngine
#                          and multi-lane trace emission
#
# Afterwards:
#   - audit-replay stage (under the ASan/UBSan build): records a decision
#     provenance stream with the CLI, replays it with `audit --replay`, and
#     runs `validate` on the exported schedule
#   - analyze smoke stage (same build): `analyze --json` for every scheduler,
#     asserting the noceas.analysis.v1 identities (critical path length ==
#     makespan, exact wait decomposition)
#   - campaign smoke stage (same build): a mini-campaign under ASan/UBSan,
#     asserting the manifest/aggregate invariants (every run ok, byte-
#     identical reruns across thread counts, bit-exact mean reconciliation)
#     and that the dashboard renders
#   - telemetry stage (ASan/UBSan build, plus a TSan'd live campaign): the
#     progress/timeseries streams and the stall watchdog end to end — an
#     artificially slowed unit (NOCEAS_TEST_STALL_UNIT/_MS) must produce
#     exactly one stall event naming that unit and its open span path, the
#     streams must be schema-valid with one start + one finish per unit,
#     and manifest/aggregate/dashboard must be byte-identical with
#     sampling on vs off
#   - shard stage (same build): a 3-shard mini-fleet under ASan/UBSan —
#     `campaign --shard i/3` three times plus `campaign merge` must produce
#     manifest/aggregate/dashboard byte-identical to the 1-process campaign,
#     the merged aggregate must reconcile bit-exactly with the merged
#     manifest rows, and a stall injected into one shard must be localized
#     to that shard's lane of the fleet timeline
#   - diff stage (same build): the first-divergence engine under ASan/UBSan —
#     six-scheduler self-diff must be empty (exit 0), a decision stream with
#     one tampered mid-stream place record must be localized to exactly that
#     seq (exit 1), and the campaign-mode self-diff across thread counts must
#     be empty
#   - repair-replay stage (same build): schedules an eas run twice — with
#     incremental suffix evaluation and under the NOCEAS_REPAIR_FULL_REBUILD
#     escape hatch — and requires byte-identical schedules/decision streams
#   - profile smoke stage (same build): `schedule --profile` under
#     ASan/UBSan, python-asserting the noceas.profile.v1 identities (self
#     times sum to the root total, children nest inside parents, folded
#     lines mirror the JSON) and the campaign fleet merge's thread-count
#     byte-identity
#   - observability smoke gate (plain build): an attached tracer — and the
#     span-profiler spine — must leave schedules bit-identical and cost
#     < 5% runtime against an identically-probing reference
#   - perf-baseline gates: tools/bench_compare.py check — hard on all four
#     repair hot-path benches (BM_EasFull_MissBenchmarks/0-3), soft
#     elsewhere; regressions are attributed to the span whose self time grew
#
# Usage: tools/ci_sanitize.sh [build-dir-prefix]   (default: build-san)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"

configure_and_test() {
  local dir="$1" sanitize="$2" test_filter="${3:-}"
  echo "==> [$sanitize] configuring $dir"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNOCEAS_SANITIZE="$sanitize" \
    -DNOCEAS_BUILD_BENCH=OFF \
    -DNOCEAS_BUILD_EXAMPLES=OFF >/dev/null
  echo "==> [$sanitize] building"
  cmake --build "$dir" -j "$(nproc)" >/dev/null
  echo "==> [$sanitize] testing ${test_filter:+(filter: $test_filter)}"
  if [[ -n "$test_filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -R "$test_filter"
  else
    ctest --test-dir "$dir" --output-on-failure
  fi
}

# ASan+UBSan over the whole suite.
configure_and_test "${prefix}-asan" "address,undefined"

# TSan over the tests that drive the thread pool / parallel probe path, the
# parallel repair-wave evaluation (Repair/Timing/SuffixRebuild lanes), and
# the multi-lane tracer / lock-free metrics (obs_test).
# halt_on_error makes a race fail the ctest run instead of just logging.
TSAN_OPTIONS="halt_on_error=1" \
  configure_and_test "${prefix}-tsan" "thread" "ProbeCache|ProbeEngine|ThreadPool|TentativeTables|list_common|Metrics|Trace|Repair|Timing|SuffixRebuild|BudgetRetries|LazyProbes|Progress|Watchdog|Timeseries"

# Audit-replay stage, reusing the ASan/UBSan binaries: record a decision
# stream end to end through the CLI, replay-verify it, and validate the
# exported schedule.  Any drift between the schedulers' bookkeeping and the
# commit machinery (or a memory bug in the audit path itself) fails here.
audit_dir="$(mktemp -d)"
trap 'rm -rf "$audit_dir"' EXIT
cli="${prefix}-asan/tools/noceas_cli"
echo "==> [audit-replay] recording + replaying decision streams"
"$cli" gen --category 2 --index 2 --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" >/dev/null
for sched in eas edf dls greedy map; do
  "$cli" schedule --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" \
    --scheduler "$sched" --decisions "$audit_dir/d.jsonl" \
    --schedule-out "$audit_dir/s.txt" >/dev/null || true  # non-zero = deadline miss
  "$cli" audit --replay --decisions "$audit_dir/d.jsonl" \
    --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" >/dev/null
  "$cli" validate --schedule "$audit_dir/s.txt" \
    --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" >/dev/null
  echo "    $sched: replay + validate OK"
done

# Repair-replay stage (same ASan/UBSan binaries): the incremental suffix
# evaluation against the NOCEAS_REPAIR_FULL_REBUILD escape hatch, end to end
# through the CLI.  Exported schedules AND decision streams (both fully
# deterministic) must be byte-identical — any drift in the reuse machinery,
# the bounded aborts, or the accept order fails here under sanitizers.
echo "==> [repair-replay] incremental vs full-rebuild escape hatch"
"$cli" gen --category 2 --index 4 --ctg "$audit_dir/g2.txt" --platform "$audit_dir/p2.txt" >/dev/null
"$cli" schedule --ctg "$audit_dir/g2.txt" --platform "$audit_dir/p2.txt" \
  --scheduler eas --decisions "$audit_dir/d_inc.jsonl" \
  --schedule-out "$audit_dir/s_inc.txt" >/dev/null || true  # non-zero = deadline miss
NOCEAS_REPAIR_FULL_REBUILD=1 \
  "$cli" schedule --ctg "$audit_dir/g2.txt" --platform "$audit_dir/p2.txt" \
  --scheduler eas --decisions "$audit_dir/d_full.jsonl" \
  --schedule-out "$audit_dir/s_full.txt" >/dev/null || true
cmp "$audit_dir/s_inc.txt" "$audit_dir/s_full.txt" \
  || { echo "FAIL: incremental repair schedule differs from full rebuild"; exit 1; }
cmp "$audit_dir/d_inc.jsonl" "$audit_dir/d_full.jsonl" \
  || { echo "FAIL: incremental repair decision stream differs from full rebuild"; exit 1; }
"$cli" audit --replay --decisions "$audit_dir/d_inc.jsonl" \
  --ctg "$audit_dir/g2.txt" --platform "$audit_dir/p2.txt" >/dev/null
echo "    incremental == full rebuild (schedule + decision stream), replay OK"

# Analyze smoke stage (same ASan/UBSan binaries): run the post-hoc schedule
# analytics for every scheduler and check the report's load-bearing
# identities — schema, a complete critical path whose length equals the
# makespan, and the exact per-task wait decomposition.
echo "==> [analyze] post-hoc analytics under ASan/UBSan"
for sched in eas eas-base edf dls greedy map; do
  "$cli" analyze --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" \
    --scheduler "$sched" --json "$audit_dir/a.json" >/dev/null
  python3 - "$audit_dir/a.json" "$sched" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
sched = sys.argv[2]
assert doc["schema"] == "noceas.analysis.v1", doc.get("schema")
cp = doc["critical_path"]
assert cp["complete"], f"{sched}: incomplete critical path"
assert cp["length"] == doc["makespan"], (sched, cp["length"], doc["makespan"])
for t in doc["tasks"]:
    waits = t["dep_wait"] + t["link_wait"] + t["pe_wait"]
    assert waits == t["start"] - t["release"], (sched, t)
PY
  echo "    $sched: analyze OK"
done
# The exported-schedule route too, with the decision stream attached
# (s.txt / d.jsonl are the last scheduler's from the audit loop above).
"$cli" analyze --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" \
  --schedule "$audit_dir/s.txt" --decisions "$audit_dir/d.jsonl" \
  --json "$audit_dir/a.json" >/dev/null
echo "    exported schedule + decisions: analyze OK"

# Campaign smoke stage (same ASan/UBSan binaries): run a small fleet twice —
# parallel and serial — and hold the campaign subsystem to its contract:
# every run succeeds, manifest/aggregate/dashboard are byte-identical across
# thread counts, and the aggregate means reconcile bit-exactly with the
# manifest's outcome rows.
echo "==> [campaign] mini-campaign under ASan/UBSan"
"$cli" campaign --out "$audit_dir/camp" --categories 1 --seeds 3 \
  --schedulers eas,edf --threads 4 >/dev/null
"$cli" campaign --out "$audit_dir/camp1" --categories 1 --seeds 3 \
  --schedulers eas,edf --threads 1 >/dev/null
for f in manifest.json aggregate.json dashboard.html; do
  cmp "$audit_dir/camp/$f" "$audit_dir/camp1/$f" \
    || { echo "FAIL: $f differs across thread counts"; exit 1; }
done
python3 - "$audit_dir/camp" <<'PY'
import json, os, sys
d = sys.argv[1]
with open(os.path.join(d, "manifest.json")) as f:
    manifest = json.load(f)
with open(os.path.join(d, "aggregate.json")) as f:
    aggregate = json.load(f)
assert manifest["schema"] == "noceas.campaign.v1"
assert aggregate["schema"] == "noceas.campaign.aggregate.v1"
runs = manifest["runs"]
assert len(runs) == 6 and all(r["ok"] for r in runs), runs
# Bit-exact reconciliation: the aggregate mean is the plain sum of the
# manifest rows in order, divided by the count.
for s in aggregate["schedulers"]:
    mine = [r for r in runs if r["scheduler"] == s["scheduler"]]
    assert s["runs"] == len(mine)
    total = 0.0
    for r in mine:
        total += r["energy"]
    assert s["energy"]["mean"] == total / len(mine), s["scheduler"]
with open(os.path.join(d, "dashboard.html")) as f:
    html = f.read()
assert "</html>" in html and "<svg" in html
PY
echo "    campaign: determinism + reconciliation + dashboard OK"

# Live-telemetry stage.  Three contracts, end to end through the CLI:
#  1. Segregation: the deterministic artifacts are byte-identical with the
#     sampler + progress stream + watchdog enabled vs fully disabled
#     (telemetry only ever adds files; camp/ above is the disabled side).
#  2. Stall localization: a unit artificially slowed via the span-spine
#     test hook must produce exactly one stall event naming that unit and
#     an open span path ending in the hook's span.
#  3. Stream validity: progress.jsonl carries one start + one finish per
#     unit with a monotone done counter, timeseries.jsonl carries schema'd
#     samples, and `timeseries summarize` folds both.
# The watchdog/sampler threads also get a TSan pass: the telemetry unit
# tests run under the thread-sanitized suite above, and a live sampled +
# watchdogged mini-campaign runs under the TSan binaries here.
echo "==> [telemetry] byte-identity with sampling on vs off"
"$cli" campaign --out "$audit_dir/campT" --categories 1 --seeds 3 \
  --schedulers eas,edf --threads 4 --progress --timeseries \
  --telemetry-interval-ms 50 >/dev/null
for f in manifest.json aggregate.json dashboard.html; do
  cmp "$audit_dir/camp/$f" "$audit_dir/campT/$f" \
    || { echo "FAIL: $f differs with telemetry enabled"; exit 1; }
done
[[ -s "$audit_dir/campT/progress.jsonl" && -s "$audit_dir/campT/timeseries.jsonl" \
   && -s "$audit_dir/campT/timeline.html" ]] \
  || { echo "FAIL: telemetry streams missing from campT"; exit 1; }
echo "    manifest/aggregate/dashboard identical; streams + timeline present"

echo "==> [telemetry] injected stall localization under ASan/UBSan"
stall_unit="cat1-i0-s3-edf"  # the last unit in expansion order
NOCEAS_TEST_STALL_UNIT="$stall_unit" NOCEAS_TEST_STALL_MS=8000 \
  "$cli" campaign --out "$audit_dir/campS" --categories 1 --seeds 3 \
  --schedulers eas,edf --threads 2 --progress --timeseries \
  --telemetry-interval-ms 100 --stall-multiplier 2 --stall-floor-ms 500 \
  >/dev/null 2>"$audit_dir/campS_stderr.txt"
python3 - "$audit_dir/campS" "$stall_unit" <<'PY'
import json, os, sys
d, stall_unit = sys.argv[1], sys.argv[2]
lines = open(os.path.join(d, "progress.jsonl")).read().splitlines()
header = json.loads(lines[0])
assert header["schema"] == "noceas.progress.v1", header
total = header["total"]
starts, finishes, stalls, prev_done = {}, {}, [], 0
for line in lines[1:]:
    ev = json.loads(line)
    if ev["ev"] == "start":
        starts[ev["unit"]] = starts.get(ev["unit"], 0) + 1
    elif ev["ev"] in ("finish", "error"):
        finishes[ev["unit"]] = finishes.get(ev["unit"], 0) + 1
        assert ev["done"] >= prev_done, "done counter went backwards"
        prev_done = ev["done"]
    elif ev["ev"] == "stall":
        stalls.append(ev)
assert len(starts) == total and all(n == 1 for n in starts.values()), starts
assert len(finishes) == total and all(n == 1 for n in finishes.values()), finishes
assert prev_done == total
# Exactly one stall, naming the slowed unit, localized to the hook's span.
assert len(stalls) == 1, stalls
assert stalls[0]["unit"] == stall_unit, stalls[0]
assert any("test.stall_hook" in s for s in stalls[0]["spans"]), stalls[0]
assert stalls[0]["open_ms"] >= stalls[0]["deadline_ms"] > 0
ts_lines = open(os.path.join(d, "timeseries.jsonl")).read().splitlines()
assert json.loads(ts_lines[0])["schema"] == "noceas.timeseries.v1"
assert len(ts_lines) >= 2 and all("series" in json.loads(l) for l in ts_lines[1:])
print("    stall localized to %s (spans: %s); streams valid"
      % (stall_unit, stalls[0]["spans"]))
PY
"$cli" timeseries summarize --in "$audit_dir/campS/progress.jsonl" \
  --json "$audit_dir/campS_progress_summary.json" >/dev/null
"$cli" timeseries summarize --in "$audit_dir/campS/timeseries.jsonl" >/dev/null
grep -q '"stalls":1' "$audit_dir/campS_progress_summary.json" \
  || { echo "FAIL: progress summary does not count the stall"; exit 1; }
echo "    timeseries summarize: both streams fold OK"

echo "==> [telemetry] sampled + watchdogged mini-campaign under TSan"
TSAN_OPTIONS="halt_on_error=1" \
  "${prefix}-tsan/tools/noceas_cli" campaign --out "$audit_dir/campTsan" \
  --categories 1 --seeds 2 --schedulers eas,edf --threads 4 \
  --progress --timeseries --telemetry-interval-ms 20 >/dev/null
echo "    TSan live campaign clean"

# Shard stage (same ASan/UBSan binaries): fleet scale-out end to end.
#  1. Byte-identity: a 3-shard fleet (mixed per-shard thread counts) merged
#     with `campaign merge` must reproduce the 1-process campaign's
#     manifest/aggregate/dashboard byte for byte (camp1 above is the
#     1-process reference for the same spec).
#  2. Reconciliation: the merged aggregate's means must be the plain
#     unit-order sum of the merged manifest rows — bit-exact.
#  3. Fleet telemetry: a stall injected into one shard must surface in the
#     merged fleet timeline inside that shard's lane, not anywhere else.
echo "==> [shard] 3-shard fleet merge under ASan/UBSan"
for i in 0 1 2; do
  "$cli" campaign --out "$audit_dir/fleet/s$i" --categories 1 --seeds 3 \
    --schedulers eas,edf --threads $((1 + i % 2)) --shard "$i/3" >/dev/null
done
"$cli" campaign merge --out "$audit_dir/fleet/merged" \
  --shards "$audit_dir/fleet/s0,$audit_dir/fleet/s1,$audit_dir/fleet/s2" >/dev/null
for f in manifest.json aggregate.json dashboard.html; do
  cmp "$audit_dir/fleet/merged/$f" "$audit_dir/camp1/$f" \
    || { echo "FAIL: merged $f differs from the 1-process campaign"; exit 1; }
done
python3 - "$audit_dir/fleet/merged" <<'PY'
import json, os, sys
d = sys.argv[1]
with open(os.path.join(d, "manifest.json")) as f:
    manifest = json.load(f)
with open(os.path.join(d, "aggregate.json")) as f:
    aggregate = json.load(f)
runs = manifest["runs"]
assert len(runs) == 6 and all(r["ok"] for r in runs), runs
for s in aggregate["schedulers"]:
    mine = [r for r in runs if r["scheduler"] == s["scheduler"]]
    assert s["runs"] == len(mine)
    total = 0.0
    for r in mine:
        total += r["energy"]
    assert s["energy"]["mean"] == total / len(mine), s["scheduler"]
PY
echo "    3-shard merge byte-identical to 1-process; aggregate reconciles"

# A 12-unit fleet with telemetry; shard 1 owns global units 1,4,7,10 and
# unit 10 (cat1-i0-s6-eas) is artificially stalled via the span-spine hook.
echo "==> [shard] injected stall localized to its fleet-timeline lane"
stall_unit="cat1-i0-s6-eas"
for i in 0 1 2; do
  env $([ "$i" -eq 1 ] && echo "NOCEAS_TEST_STALL_UNIT=$stall_unit NOCEAS_TEST_STALL_MS=3000") \
    "$cli" campaign --out "$audit_dir/fleetS/s$i" --categories 1 --seeds 6 \
    --schedulers eas,edf --shard "$i/3" --progress --timeseries \
    --telemetry-interval-ms 100 --stall-multiplier 2 --stall-floor-ms 400 \
    >/dev/null
done
"$cli" campaign merge --out "$audit_dir/fleetS/merged" \
  --shards "$audit_dir/fleetS/s0,$audit_dir/fleetS/s1,$audit_dir/fleetS/s2" \
  > "$audit_dir/fleetS_merge.txt"
grep -q "1 stall event" "$audit_dir/fleetS_merge.txt" \
  || { echo "FAIL: merge summary does not count the injected stall"; \
       cat "$audit_dir/fleetS_merge.txt"; exit 1; }
python3 - "$audit_dir/fleetS/merged" "$stall_unit" <<'PY'
import re, sys
html = open(sys.argv[1] + "/timeline.html").read()
stall_unit = sys.argv[2]
# One lane group per shard, in shard order; the stall marker must sit in
# shard 1's group and nowhere else.
lanes = re.split(r"<g ", html)[1:]
assert len(lanes) == 3, "expected 3 fleet lanes, got %d" % len(lanes)
hits = ["stall: " + stall_unit in lane for lane in lanes]
assert hits == [False, True, False], hits
# The merged progress stream kept all three segment headers.
progress = open(sys.argv[1] + "/progress.jsonl").read()
assert progress.count('"schema":"noceas.progress.v1"') == 3
print("    stall localized to the shard 1 lane; 3 progress segments kept")
PY
"$cli" timeseries summarize --in "$audit_dir/fleetS/merged/progress.jsonl" \
  --json "$audit_dir/fleetS_summary.json" >/dev/null
python3 - "$audit_dir/fleetS_summary.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["total"] == 12 and s["finishes"] == 12, s
assert s["stalls"] == 1, s
PY
echo "    concatenated progress stream folds: 12/12 finished, 1 stall"

# Differential-observability stage (same ASan/UBSan binaries): the diff
# engine's core contracts, end to end through the CLI.
#  - Self-diff is empty: every scheduler diffed against a second live run of
#    itself must report an empty diff and exit 0.
#  - Tamper localization: flipping the chosen PE of one place record in the
#    middle of a recorded decision stream must be pinpointed to exactly that
#    seq as a choice divergence, with exit 1.
#  - Campaign self-diff: the two thread-count variants above are
#    byte-identical, so the campaign-mode diff must also come back empty.
echo "==> [diff] first-divergence engine under ASan/UBSan"
for sched in eas eas-base edf dls greedy map; do
  "$cli" diff --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" \
    --scheduler-a "$sched" --scheduler-b "$sched" >/dev/null \
    || { echo "FAIL: $sched self-diff is not empty"; exit 1; }
  echo "    $sched: self-diff empty"
done
"$cli" schedule --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" \
  --scheduler eas --decisions "$audit_dir/d_ref.jsonl" >/dev/null || true
tamper_seq="$(python3 - "$audit_dir/d_ref.jsonl" "$audit_dir/d_tampered.jsonl" <<'PY'
import json, sys
out, places, seq = [], 0, None
for line in open(sys.argv[1]).read().splitlines():
    rec = json.loads(line)
    if seq is None and rec.get("type") == "place":
        places += 1
        if places == 8:  # a mid-stream decision, well past the header
            rec["pe"] = (rec["pe"] + 1) % 16
            seq = rec["seq"]
    out.append(json.dumps(rec, separators=(",", ":")))
assert seq is not None, "stream has fewer than 8 place records"
with open(sys.argv[2], "w") as f:
    f.write("\n".join(out) + "\n")
print(seq)
PY
)"
set +e
"$cli" diff --decisions-a "$audit_dir/d_ref.jsonl" \
  --decisions-b "$audit_dir/d_tampered.jsonl" > "$audit_dir/diff_out.txt"
diff_rc=$?
set -e
[[ $diff_rc -eq 1 ]] \
  || { echo "FAIL: tampered diff exited $diff_rc (want 1)"; cat "$audit_dir/diff_out.txt"; exit 1; }
grep -q "first divergence at seq $tamper_seq " "$audit_dir/diff_out.txt" \
  || { echo "FAIL: diff did not localize tampered seq $tamper_seq"; cat "$audit_dir/diff_out.txt"; exit 1; }
grep -q "choice" "$audit_dir/diff_out.txt" \
  || { echo "FAIL: tampered PE not classified as a choice divergence"; cat "$audit_dir/diff_out.txt"; exit 1; }
echo "    tampered place record localized to seq $tamper_seq (choice), exit 1"
"$cli" diff --campaign-a "$audit_dir/camp" --campaign-b "$audit_dir/camp1" >/dev/null \
  || { echo "FAIL: campaign self-diff is not empty"; exit 1; }
echo "    campaign self-diff (threads 4 vs 1): empty"

# Profile smoke stage (same ASan/UBSan binaries): the span-statistics
# profiler end to end through the CLI, held to its integer identities —
# every call path's exclusive self time sums to the root spans' total,
# children nest inside their parents, and the folded export mirrors the
# JSON's positive self times.
echo "==> [profile] span-stats profiler under ASan/UBSan"
"$cli" schedule --ctg "$audit_dir/g.txt" --platform "$audit_dir/p.txt" \
  --scheduler eas --profile "$audit_dir/prof.json" \
  --profile-folded "$audit_dir/prof.folded" >/dev/null || true  # non-zero = deadline miss
python3 - "$audit_dir/prof.json" "$audit_dir/prof.folded" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "noceas.profile.v1", doc.get("schema")
assert doc["lanes"] >= 1 and doc["records"], "empty profile"
shapes = {r["path"]: r for r in doc["records"]}
timings = {r["path"]: r for r in doc["timings"]["records"]}
assert set(timings) == set(shapes)
# Self-time identity: exclusive self times sum exactly to the root total,
# which fits inside the run's wall clock.
roots = sum(t["total_ns"] for p, t in timings.items() if shapes[p]["depth"] == 0)
selfs = sum(t["self_ns"] for t in timings.values())
assert selfs == roots, (selfs, roots)
assert 0 < roots <= doc["timings"]["wall_ns"]
# Nesting: a record's direct children never exceed its inclusive total.
for path, t in timings.items():
    kids = sum(c["total_ns"] for p2, c in timings.items()
               if p2.startswith(path + ";")
               and shapes[p2]["depth"] == shapes[path]["depth"] + 1)
    assert kids <= t["total_ns"], (path, kids, t["total_ns"])
# Folded lines mirror the JSON's positive self times exactly.
folded = {}
with open(sys.argv[2]) as f:
    for line in f:
        p, w = line.rstrip("\n").rsplit(" ", 1)
        folded[p] = int(w)
assert folded == {p: t["self_ns"] for p, t in timings.items() if t["self_ns"] > 0}
print("    profile: identities + folded export OK")
PY
# Fleet merge determinism: profile *shapes* byte-identical across thread
# counts (durations live in profile_timings.json, outside the contract).
"$cli" campaign --out "$audit_dir/campP" --categories 1 --seeds 2 \
  --schedulers eas,edf --threads 4 --profile >/dev/null
"$cli" campaign --out "$audit_dir/campP1" --categories 1 --seeds 2 \
  --schedulers eas,edf --threads 1 --profile >/dev/null
cmp "$audit_dir/campP/profile.json" "$audit_dir/campP1/profile.json" \
  || { echo "FAIL: fleet profile shapes differ across thread counts"; exit 1; }
echo "    profile: campaign fleet merge deterministic across threads"

# Observability smoke gate: tracing and span profiling must not change
# schedules and must stay within the 5% overhead budget against an
# identically-probing (eager) reference (docs/OBSERVABILITY.md).  Built
# without sanitizers — the budget is a statement about the production build.
smoke="${prefix}-smoke"
echo "==> [obs-smoke] configuring $smoke"
cmake -B "$smoke" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "==> [obs-smoke] building"
cmake --build "$smoke" -j "$(nproc)" --target runtime_scaling --target noceas_cli >/dev/null
echo "==> [obs-smoke] running"
"$smoke"/bench/runtime_scaling --obs-smoke

# Perf-baseline gates: compare against bench/baselines/*.json.
#  - Hard gate on all four repair hot-path benchmarks (the 10x win this
#    library promises): a regression on any BM_EasFull_MissBenchmarks/0-3
#    fails CI when the environment fingerprint matches the baseline's
#    (check exits 0, "not gated", on foreign hardware).  A regression row
#    names the span whose self time grew (the bench exports per-phase
#    self_ms counters).
#  - Soft gate over the full suite — timings on shared CI boxes are too
#    noisy to block on wholesale.
echo "==> [bench-compare] hard gate on the repair hot path"
python3 tools/bench_compare.py check --build-dir "$smoke" \
  --filter 'BM_EasFull_MissBenchmarks/(0|1|2|3)$'
echo "==> [bench-compare] soft gate (full suite)"
python3 tools/bench_compare.py check --build-dir "$smoke" \
  || echo "warn: bench_compare flagged a regression (soft gate, not failing CI)"

echo "==> sanitize CI passed"
