#!/usr/bin/env python3
"""Self-check for the pure comparison core of tools/bench_compare.py.

Exercises compare() on synthetic baseline/run pairs only — no benchmark
binaries are executed, so this runs in milliseconds and is wired into ctest.
"""

import io
import json
import unittest

import bench_compare


def make_baseline(bench_ms, metrics=None, profile=None):
    base = {
        "schema": bench_compare.BASELINE_SCHEMA,
        "bench_ms": dict(bench_ms),
        "metrics": dict(metrics or {}),
    }
    if profile is not None:
        base["profile_self_ms"] = profile
    return base


class CompareTest(unittest.TestCase):
    def test_identical_run_passes(self):
        base = make_baseline({"a": 10.0, "b": 2.5}, {"m": 7})
        r = bench_compare.compare(base, {"a": 10.0, "b": 2.5}, {"m": 7}, 0.35, True)
        self.assertEqual(r["schema"], bench_compare.COMPARE_SCHEMA)
        self.assertEqual(r["verdict"], "pass")
        self.assertEqual(r["regressions"], 0)
        self.assertEqual([row["verdict"] for row in r["benchmarks"]], ["ok", "ok"])
        self.assertEqual(r["metric_drift"], [])

    def test_within_tolerance_is_ok(self):
        base = make_baseline({"a": 10.0})
        r = bench_compare.compare(base, {"a": 13.0}, {}, 0.35, True)
        self.assertEqual(r["benchmarks"][0]["verdict"], "ok")
        self.assertAlmostEqual(r["benchmarks"][0]["delta_rel"], 0.3)
        self.assertEqual(r["verdict"], "pass")

    def test_regression_fails_when_comparable(self):
        base = make_baseline({"a": 10.0, "b": 5.0})
        r = bench_compare.compare(base, {"a": 20.0, "b": 5.0}, {}, 0.35, True)
        self.assertEqual(r["verdict"], "fail")
        self.assertEqual(r["regressions"], 1)
        by_name = {row["name"]: row for row in r["benchmarks"]}
        self.assertEqual(by_name["a"]["verdict"], "regression")
        self.assertEqual(by_name["b"]["verdict"], "ok")

    def test_regression_only_warns_on_foreign_hardware(self):
        base = make_baseline({"a": 10.0})
        r = bench_compare.compare(base, {"a": 20.0}, {}, 0.35, False)
        self.assertEqual(r["verdict"], "warn")
        self.assertFalse(r["comparable"])

    def test_improvement_warns_to_suggest_rerecord(self):
        base = make_baseline({"a": 10.0})
        r = bench_compare.compare(base, {"a": 5.0}, {}, 0.35, True)
        self.assertEqual(r["benchmarks"][0]["verdict"], "improved")
        self.assertEqual(r["verdict"], "warn")

    def test_missing_and_new_benchmarks_warn(self):
        base = make_baseline({"gone": 10.0})
        r = bench_compare.compare(base, {"fresh": 1.0}, {}, 0.35, True)
        by_name = {row["name"]: row for row in r["benchmarks"]}
        self.assertEqual(by_name["gone"]["verdict"], "missing")
        self.assertIsNone(by_name["gone"]["current_ms"])
        self.assertEqual(by_name["fresh"]["verdict"], "new")
        self.assertIsNone(by_name["fresh"]["baseline_ms"])
        self.assertEqual(r["verdict"], "warn")

    def test_metric_drift_is_exact_and_warns(self):
        base = make_baseline({"a": 1.0}, {"hits": 100, "commits": 5})
        r = bench_compare.compare(base, {"a": 1.0}, {"hits": 101, "commits": 5},
                                  0.35, True)
        self.assertEqual(r["metric_drift"],
                         [{"name": "hits", "baseline": 100, "current": 101}])
        self.assertEqual(r["verdict"], "warn")

    def test_zero_baseline_does_not_divide(self):
        base = make_baseline({"a": 0.0})
        r = bench_compare.compare(base, {"a": 3.0}, {}, 0.35, True)
        self.assertEqual(r["benchmarks"][0]["delta_rel"], 0.0)
        self.assertEqual(r["benchmarks"][0]["verdict"], "ok")

    def test_report_is_json_serializable(self):
        base = make_baseline({"a": 10.0}, {"m": 1})
        r = bench_compare.compare(base, {"b": 2.0}, {}, 0.35, False)
        round_tripped = json.loads(json.dumps(r))
        self.assertEqual(round_tripped, r)

    def test_flatten_campaign_aggregate(self):
        doc = {
            "schema": "noceas.campaign.aggregate.v1",
            "schedulers": [
                {"scheduler": "eas", "runs": 3, "miss_rate": 0.0,
                 "energy": {"mean": 10.0, "p50": 9.0, "p90": 12.0, "min": 8.0},
                 "makespan": {"mean": 100.0, "p50": 90.0, "p90": 120.0}},
                {"scheduler": "edf", "runs": 2, "miss_rate": 0.5,
                 "energy": {"mean": 20.0, "p50": 19.0, "p90": 22.0},
                 "makespan": {"mean": 50.0, "p50": 45.0, "p90": 60.0}},
            ],
        }
        flat = bench_compare.flatten_campaign_aggregate(doc)
        self.assertEqual(flat["campaign.eas.runs"], 3)
        self.assertEqual(flat["campaign.eas.energy.p90"], 12.0)
        self.assertEqual(flat["campaign.edf.miss_rate"], 0.5)
        self.assertEqual(flat["campaign.edf.makespan.p50"], 45.0)
        # 2 schedulers x (runs + miss_rate + 2 metrics x 3 stats) keys.
        self.assertEqual(len(flat), 16)

    def test_campaign_drift_flows_through_compare(self):
        base = make_baseline({"a": 1.0}, {"campaign.eas.energy.mean": 10.0})
        r = bench_compare.compare(base, {"a": 1.0},
                                  {"campaign.eas.energy.mean": 11.0}, 0.35, True)
        self.assertEqual(r["metric_drift"],
                         [{"name": "campaign.eas.energy.mean",
                           "baseline": 10.0, "current": 11.0}])
        self.assertEqual(r["verdict"], "warn")

    def test_regression_names_the_span_that_grew(self):
        base = make_baseline(
            {"a": 10.0},
            profile={"a": {"eas.schedule": 2.0, "eas.schedule;probe.batch": 8.0}})
        cur_profile = {"a": {"eas.schedule": 2.5, "eas.schedule;probe.batch": 17.0}}
        r = bench_compare.compare(base, {"a": 20.0}, {}, 0.35, True, cur_profile)
        suspect = r["benchmarks"][0]["suspect_span"]
        self.assertEqual(suspect["path"], "eas.schedule;probe.batch")
        self.assertEqual(suspect["baseline_ms"], 8.0)
        self.assertEqual(suspect["current_ms"], 17.0)
        self.assertAlmostEqual(suspect["delta_ms"], 9.0)
        self.assertEqual(r["verdict"], "fail")

    def test_regression_without_profile_data_has_no_suspect(self):
        base = make_baseline({"a": 10.0})
        r = bench_compare.compare(base, {"a": 20.0}, {}, 0.35, True)
        self.assertIsNone(r["benchmarks"][0]["suspect_span"])

    def test_ok_rows_carry_no_suspect_key(self):
        base = make_baseline({"a": 10.0}, profile={"a": {"s": 9.0}})
        r = bench_compare.compare(base, {"a": 10.0}, {}, 0.35, True, {"a": {"s": 9.0}})
        self.assertNotIn("suspect_span", r["benchmarks"][0])

    def test_attribution_counts_a_new_span_as_growth(self):
        suspect = bench_compare.attribute_regression(
            {"old": 5.0}, {"old": 5.0, "fresh": 4.0})
        self.assertEqual(suspect["path"], "fresh")
        self.assertEqual(suspect["baseline_ms"], 0.0)
        self.assertEqual(suspect["delta_ms"], 4.0)

    def test_attribution_with_no_growth_returns_none(self):
        self.assertIsNone(bench_compare.attribute_regression({"s": 5.0}, {"s": 4.0}))
        self.assertIsNone(bench_compare.attribute_regression({}, {"s": 4.0}))
        self.assertIsNone(bench_compare.attribute_regression({"s": 4.0}, None))

    def test_print_report_names_the_suspect(self):
        base = make_baseline({"a": 10.0}, profile={"a": {"repair.evaluate": 6.0}})
        r = bench_compare.compare(base, {"a": 20.0}, {}, 0.35, True,
                                  {"a": {"repair.evaluate": 15.5}})
        out = io.StringIO()
        bench_compare.print_report(r, out=out)
        self.assertIn("suspect: repair.evaluate self 6.00 -> 15.50 ms", out.getvalue())

    def test_print_report_renders_every_verdict(self):
        base = make_baseline({"slow": 10.0, "gone": 1.0}, {"m": 1})
        r = bench_compare.compare(base, {"slow": 20.0, "fresh": 2.0}, {"m": 3},
                                  0.35, True)
        out = io.StringIO()
        bench_compare.print_report(r, out=out)
        text = out.getvalue()
        self.assertIn("REGRESSION", text)
        self.assertIn("MISSING  gone", text)
        self.assertIn("NEW      fresh", text)
        self.assertIn("metric drift: m 1 -> 3", text)
        self.assertIn("regressed beyond 35%", text)


class DiffCommandTest(unittest.TestCase):
    def test_maps_miss_benchmarks_to_instances_and_schedulers(self):
        cmd = bench_compare.diff_command("BM_EasBase_MissBenchmarks/0", "bld")
        self.assertIn("gen --category 2 --index 2", cmd)
        self.assertIn("--scheduler-a eas-base", cmd)
        self.assertIn("bld/tools/noceas_cli diff", cmd)
        cmd = bench_compare.diff_command("BM_EasFull_MissBenchmarks/3")
        self.assertIn("gen --category 2 --index 8", cmd)
        self.assertIn("--scheduler-a eas", cmd)
        cmd = bench_compare.diff_command("BM_Edf_MissBenchmarks/1")
        self.assertIn("gen --category 2 --index 4", cmd)
        self.assertIn("--scheduler-a edf", cmd)

    def test_unmapped_benchmarks_get_no_hint(self):
        self.assertIsNone(bench_compare.diff_command("BM_Repair_LtsOnly/0"))
        self.assertIsNone(bench_compare.diff_command("BM_EasFull_MissBenchmarks"))
        self.assertIsNone(bench_compare.diff_command("BM_EasFull_MissBenchmarks/9"))
        self.assertIsNone(bench_compare.diff_command("BM_EasFull_MissBenchmarks/x"))

    def test_regression_row_carries_diff_command(self):
        base = make_baseline({"BM_EasFull_MissBenchmarks/0": 10.0})
        r = bench_compare.compare(base, {"BM_EasFull_MissBenchmarks/0": 20.0},
                                  {}, 0.35, True, build_dir="bld")
        row = r["benchmarks"][0]
        self.assertEqual(row["verdict"], "regression")
        self.assertIn("bld/tools/noceas_cli diff", row["diff_command"])
        json.dumps(r)  # hint must keep the report serializable

    def test_ok_rows_and_unmapped_regressions_carry_no_diff_command(self):
        base = make_baseline({"BM_EasFull_MissBenchmarks/0": 10.0,
                              "BM_Repair_LtsOnly/0": 10.0})
        r = bench_compare.compare(base, {"BM_EasFull_MissBenchmarks/0": 10.0,
                                         "BM_Repair_LtsOnly/0": 20.0}, {}, 0.35, True)
        by_name = {row["name"]: row for row in r["benchmarks"]}
        self.assertNotIn("diff_command", by_name["BM_EasFull_MissBenchmarks/0"])
        self.assertNotIn("diff_command", by_name["BM_Repair_LtsOnly/0"])

    def test_print_report_shows_the_hint(self):
        base = make_baseline({"BM_EasFull_MissBenchmarks/0": 10.0})
        r = bench_compare.compare(base, {"BM_EasFull_MissBenchmarks/0": 20.0},
                                  {}, 0.35, True)
        out = io.StringIO()
        bench_compare.print_report(r, out=out)
        self.assertIn("behavioral diff", out.getvalue())
        self.assertIn("--decisions-b BASELINE_DECISIONS.jsonl", out.getvalue())


if __name__ == "__main__":
    unittest.main()
