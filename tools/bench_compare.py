#!/usr/bin/env python3
"""Record / check perf baselines for the runtime_scaling benchmark.

Two modes:

  record   run the bench + a deterministic metrics probe, stamp the result
           with an environment fingerprint, write it to
           bench/baselines/runtime_scaling.json and append a summary snapshot
           to BENCH_runtime_scaling.json (the repo's perf trajectory).

  check    re-run and compare against the checked-in baseline with a noise
           tolerance.  Exits 2 on a timing regression, 0 otherwise.  When the
           environment fingerprint does not match the baseline's the timings
           are not comparable: differences are reported but never fail the
           run (CI uses this as a soft gate until baselines stabilize).

The bench exports per-phase span self times as "self_ms:<call path>"
counters (one extra profiled run per benchmark, outside the timed loop).
record stores them as profile_self_ms next to bench_ms; check uses them to
attribute a timing regression to the span whose exclusive self time grew
the most (the report row gains a suspect_span object).  Benchmarks that
export throughput counters ("*_per_s", e.g. BM_CampaignMerge's merged
units_per_s) get those recorded as bench_rates in the baseline and every
trajectory entry, so fleet-path throughput is tracked like scheduler
timings.
tools/perf_report.py renders the accumulated trajectory as an HTML
dashboard.

Timings are medians over --repetitions runs of google-benchmark.  The
metrics section (probe cache hit rate, decision counters from a fixed
`noceas_cli schedule --metrics` run, plus the cross-run aggregates of a
fixed `noceas_cli campaign` mini-fleet) is deterministic, so any drift there
is reported exactly; it warns rather than fails because a deliberate
algorithm change legitimately moves those numbers — re-record the baseline
with it.

`check --json PATH` additionally writes a machine-readable diff
(`noceas.bench_compare.v1`): per-benchmark baseline/current/delta with an
ok / improved / regression / missing / new verdict, the exact metric drift,
and an overall pass / warn / fail verdict.  Pass `-` to write it to stdout
(the human-readable table then goes to stderr).

Usage:
  tools/bench_compare.py record [--build-dir build] [--min-time 0.05]
  tools/bench_compare.py check  [--build-dir build] [--tolerance 0.35] [--json out.json]
"""

import argparse
import hashlib
import json
import os
import platform
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_SCHEMA = "noceas.bench_baseline.v1"
TRAJECTORY_SCHEMA = "noceas.bench_trajectory.v1"
COMPARE_SCHEMA = "noceas.bench_compare.v1"
PROFILE_PREFIX = "self_ms:"  # span self-time counters exported by the bench


def run(cmd, **kw):
    return subprocess.run(cmd, check=True, capture_output=True, text=True, **kw)


def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def compiler_id(build_dir):
    """Compiler path + version from the CMake cache."""
    cache = os.path.join(build_dir, "CMakeCache.txt")
    cxx = None
    try:
        with open(cache) as f:
            for line in f:
                m = re.match(r"CMAKE_CXX_COMPILER:\w+=(.*)", line)
                if m:
                    cxx = m.group(1).strip()
    except OSError:
        return "unknown"
    if not cxx:
        return "unknown"
    try:
        first = run([cxx, "--version"]).stdout.splitlines()[0]
        return first
    except (OSError, subprocess.CalledProcessError):
        return cxx


def git_rev():
    try:
        return run(["git", "rev-parse", "--short", "HEAD"], cwd=REPO).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def fingerprint(build_dir):
    fp = {
        "cpu": cpu_model(),
        "cores": os.cpu_count(),
        "compiler": compiler_id(build_dir),
        "os": f"{platform.system()} {platform.release()}",
    }
    digest = hashlib.sha256(json.dumps(fp, sort_keys=True).encode()).hexdigest()[:12]
    fp["id"] = digest
    return fp


def run_google_benchmark(build_dir, min_time, repetitions, bench_filter):
    bench = os.path.join(build_dir, "bench", "runtime_scaling")
    if not os.path.exists(bench):
        sys.exit(f"error: '{bench}' not built (configure with -DNOCEAS_BUILD_BENCH=ON)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out = tmp.name
    try:
        cmd = [
            bench,
            f"--benchmark_out={out}",
            "--benchmark_out_format=json",
            f"--benchmark_min_time={min_time}",
            f"--benchmark_repetitions={repetitions}",
        ]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        with open(out) as f:
            doc = json.load(f)
    finally:
        os.unlink(out)

    # Min over repetitions: the least noise-sensitive point statistic for a
    # regression gate (transient load only ever makes a run slower).  The
    # per-span self times ("self_ms:<path>" counters) and throughput rates
    # ("*_per_s" counters, e.g. the fleet merge's units_per_s) are taken
    # from the same repetition the kept timing came from, so the
    # attribution, the rate, and the timing describe one coherent run.
    timings = {}
    profile = {}
    rates = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b.get("time_unit") not in (None, "ms"):
            continue
        name = b.get("run_name", b["name"])
        ms = round(float(b["real_time"]), 4)
        if name in timings and ms >= timings[name]:
            continue
        timings[name] = ms
        spans = {k[len(PROFILE_PREFIX):]: round(float(v), 4)
                 for k, v in b.items() if k.startswith(PROFILE_PREFIX)}
        if spans:
            profile[name] = spans
        else:
            profile.pop(name, None)
        bench_rates = {k: round(float(v), 2) for k, v in b.items()
                       if k.endswith("_per_s") and isinstance(v, (int, float))}
        if bench_rates:
            rates[name] = bench_rates
        else:
            rates.pop(name, None)
    return timings, profile, rates


def deterministic_metrics(build_dir):
    """Counters/gauges of a fixed `noceas_cli schedule --metrics` run.

    These are exact (no timing noise): probe cache hit counts, commit
    counts, per-PE busy fractions.  Histogram aggregates are skipped — some
    observe wall-clock durations.
    """
    cli = os.path.join(build_dir, "tools", "noceas_cli")
    if not os.path.exists(cli):
        sys.exit(f"error: '{cli}' not built")
    with tempfile.TemporaryDirectory() as d:
        ctg, plat, met = (os.path.join(d, n) for n in ("g.txt", "p.txt", "m.json"))
        run([cli, "gen", "--category", "1", "--index", "0", "--ctg", ctg, "--platform", plat])
        subprocess.run(
            [cli, "schedule", "--ctg", ctg, "--platform", plat, "--scheduler", "eas",
             "--metrics", met],
            check=False, stdout=subprocess.DEVNULL)
        with open(met) as f:
            doc = json.load(f)
    out = {}
    for name, c in doc.get("counters", {}).items():
        out[name] = c["value"]
    for name, g in doc.get("gauges", {}).items():
        if "seconds" in name or "time" in name:
            continue
        out[name] = g["value"]
    return out


def flatten_campaign_aggregate(doc):
    """Flattens a noceas.campaign.aggregate.v1 document into exact metrics.

    Per scheduler: run count, miss rate, and the mean/p50/p90 of the energy
    and makespan distributions, keyed campaign.<scheduler>.<metric>.<stat>.
    All of these are deterministic (the campaign runner guarantees
    byte-identical aggregates for any thread count), so they ride the same
    exact-drift comparison as the scheduler counters.
    """
    flat = {}
    for s in doc.get("schedulers", []):
        prefix = f"campaign.{s['scheduler']}"
        flat[f"{prefix}.runs"] = s["runs"]
        flat[f"{prefix}.miss_rate"] = s["miss_rate"]
        for metric in ("energy", "makespan"):
            for stat in ("mean", "p50", "p90"):
                flat[f"{prefix}.{metric}.{stat}"] = s[metric][stat]
    return flat


def campaign_aggregates(build_dir):
    """Cross-run aggregates of a fixed mini-campaign (exact, no noise)."""
    cli = os.path.join(build_dir, "tools", "noceas_cli")
    if not os.path.exists(cli):
        sys.exit(f"error: '{cli}' not built")
    with tempfile.TemporaryDirectory() as d:
        out = os.path.join(d, "campaign")
        run([cli, "campaign", "--out", out, "--categories", "1", "--seeds", "3",
             "--schedulers", "eas,edf", "--threads", "2"])
        doc = load_json(os.path.join(out, "aggregate.json"))
    return flatten_campaign_aggregate(doc)


def load_json(path):
    with open(path) as f:
        return json.load(f)


def attribute_regression(base_spans, cur_spans):
    """Names the span whose exclusive self time grew the most.

    `base_spans` / `cur_spans` map call path -> self ms for one benchmark
    (a span missing on either side counts as 0 there).  Returns a
    suspect_span object, or None when either side lacks profile data or
    nothing grew — a regression without span growth is its own signal
    (time went somewhere uninstrumented).
    """
    if not base_spans or not cur_spans:
        return None
    best = None
    for path in sorted(set(base_spans) | set(cur_spans)):
        delta = cur_spans.get(path, 0.0) - base_spans.get(path, 0.0)
        if best is None or delta > best[1]:
            best = (path, delta)
    if best is None or best[1] <= 0:
        return None
    path, delta = best
    return {"path": path, "baseline_ms": base_spans.get(path, 0.0),
            "current_ms": cur_spans.get(path, 0.0), "delta_ms": round(delta, 4)}


# `noceas diff` hints for regressed benchmarks: which scheduler the bench
# family runs and which generated instance each DenseRange index maps to
# (catalog/platform match `noceas_cli gen` defaults, so the CLI reproduces
# the exact problem the bench timed).
MISS_BENCH_INSTANCES = {0: (2, 2), 1: (2, 4), 2: (2, 5), 3: (2, 8)}
MISS_BENCH_SCHEDULERS = {
    "BM_EasBase_MissBenchmarks": "eas-base",
    "BM_EasFull_MissBenchmarks": "eas",
    "BM_Edf_MissBenchmarks": "edf",
}


def diff_command(name, build_dir="build"):
    """Ready-to-run `noceas diff` invocation for a regressed benchmark.

    Answers "did behavior change, or only speed?": regenerate the exact
    instance the benchmark timed, then diff a live run of its scheduler
    against the decision stream recorded at the baseline revision (export
    one there with `noceas_cli schedule --decisions`).  An empty diff
    (exit 0) proves the regression is timing-only.  Returns None for
    benchmarks without a 1:1 scheduler-run mapping (e.g. repair ablations).
    """
    family, sep, arg = name.partition("/")
    if not sep or family not in MISS_BENCH_SCHEDULERS:
        return None
    try:
        category, index = MISS_BENCH_INSTANCES[int(arg)]
    except (KeyError, ValueError):
        return None
    cli = os.path.join(build_dir, "tools", "noceas_cli")
    ctg, plat = "/tmp/noceas_diff_g.txt", "/tmp/noceas_diff_p.txt"
    return (f"{cli} gen --category {category} --index {index}"
            f" --ctg {ctg} --platform {plat}"
            f" && {cli} diff --ctg {ctg} --platform {plat}"
            f" --scheduler-a {MISS_BENCH_SCHEDULERS[family]}"
            f" --decisions-b BASELINE_DECISIONS.jsonl")


def compare(baseline, bench, metrics, tolerance, comparable, profile=None, build_dir="build"):
    """Pure diff of a re-run against a recorded baseline.

    No I/O and no benchmark execution: `baseline` is the parsed baseline
    document, `bench` maps benchmark name -> current ms, `metrics` maps
    metric name -> current value, `profile` (optional) maps benchmark name
    -> {span path: self ms} for the current run.  Returns a
    `noceas.bench_compare.v1` report.  Verdict semantics:

      per benchmark: ok | improved | regression | missing | new
      overall:       fail  iff a regression on a comparable environment,
                     warn  for regressions on foreign hardware, missing /
                           new benchmarks, improvements, or metric drift,
                     pass  otherwise.

    A regression row carries a suspect_span naming the call path whose
    self time grew the most, when both the baseline and the current run
    have profile data for that benchmark.
    """
    base_profile = baseline.get("profile_self_ms", {})
    cur_profile = profile or {}
    rows = []
    for name, base_ms in sorted(baseline.get("bench_ms", {}).items()):
        if name not in bench:
            rows.append({"name": name, "baseline_ms": base_ms, "current_ms": None,
                         "delta_rel": None, "verdict": "missing"})
            continue
        cur = bench[name]
        rel = cur / base_ms - 1.0 if base_ms > 0 else 0.0
        if rel > tolerance:
            verdict = "regression"
        elif rel < -tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        row = {"name": name, "baseline_ms": base_ms, "current_ms": cur,
               "delta_rel": round(rel, 4), "verdict": verdict}
        if verdict == "regression":
            row["suspect_span"] = attribute_regression(
                base_profile.get(name), cur_profile.get(name))
            cmd = diff_command(name, build_dir)
            if cmd:
                row["diff_command"] = cmd
        rows.append(row)
    for name in sorted(set(bench) - set(baseline.get("bench_ms", {}))):
        rows.append({"name": name, "baseline_ms": None, "current_ms": bench[name],
                     "delta_rel": None, "verdict": "new"})

    drift = []
    for name, base_v in sorted(baseline.get("metrics", {}).items()):
        cur = metrics.get(name)
        if cur != base_v:
            drift.append({"name": name, "baseline": base_v, "current": cur})

    regressions = sum(1 for r in rows if r["verdict"] == "regression")
    attention = sum(1 for r in rows if r["verdict"] in ("improved", "missing", "new"))
    if regressions and comparable:
        overall = "fail"
    elif regressions or attention or drift:
        overall = "warn"
    else:
        overall = "pass"
    return {
        "schema": COMPARE_SCHEMA,
        "comparable": comparable,
        "tolerance": tolerance,
        "verdict": overall,
        "regressions": regressions,
        "benchmarks": rows,
        "metric_drift": drift,
    }


def cmd_record(args):
    fp = fingerprint(args.build_dir)
    print(f"environment: {fp['cpu']} · {fp['cores']} cores · {fp['compiler']}")
    print("running runtime_scaling ...")
    bench, profile, rates = run_google_benchmark(args.build_dir, args.min_time,
                                                 args.repetitions, args.filter)
    print(f"  {len(bench)} benchmark timings, {len(profile)} with span self-times, "
          f"{len(rates)} with throughput rates")
    metrics = deterministic_metrics(args.build_dir)
    print(f"  {len(metrics)} deterministic metrics")
    campaign = campaign_aggregates(args.build_dir)
    metrics.update(campaign)
    print(f"  {len(campaign)} campaign aggregates")

    baseline = {
        "schema": BASELINE_SCHEMA,
        "fingerprint": fp,
        "rev": git_rev(),
        "bench_args": {"min_time": args.min_time, "repetitions": args.repetitions},
        "bench_ms": bench,
        "bench_rates": rates,
        "profile_self_ms": profile,
        "metrics": metrics,
    }
    os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {os.path.relpath(args.baseline, REPO)}")

    # Append a snapshot to the perf trajectory.
    if os.path.exists(args.trajectory):
        traj = load_json(args.trajectory)
    else:
        traj = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    traj["entries"].append({"rev": baseline["rev"], "fingerprint": fp["id"],
                            "bench_ms": bench, "bench_rates": rates,
                            "profile_self_ms": profile})
    with open(args.trajectory, "w") as f:
        json.dump(traj, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"appended snapshot {baseline['rev']} to {os.path.relpath(args.trajectory, REPO)}")
    return 0


def print_report(report, out=sys.stdout):
    """Render a compare() report as the human-readable check table."""
    for row in report["benchmarks"]:
        v = row["verdict"]
        if v == "missing":
            print(f"  MISSING  {row['name']} (in baseline, not in this run)", file=out)
        elif v == "new":
            print(f"  NEW      {row['name']} = {row['current_ms']:.2f} ms "
                  "(not in baseline)", file=out)
        else:
            tag = {"ok": "ok", "regression": "REGRESSION",
                   "improved": "improved (consider re-recording the baseline)"}[v]
            print(f"  {row['baseline_ms']:10.2f} -> {row['current_ms']:10.2f} ms  "
                  f"{row['delta_rel']:+7.1%}  {row['name']}  {tag}", file=out)
            suspect = row.get("suspect_span")
            if suspect:
                print(f"             suspect: {suspect['path']} self "
                      f"{suspect['baseline_ms']:.2f} -> {suspect['current_ms']:.2f} ms "
                      f"(+{suspect['delta_ms']:.2f} ms)", file=out)
            cmd = row.get("diff_command")
            if cmd:
                print(f"             behavioral diff (record the -b side at the"
                      " baseline rev with 'noceas_cli schedule --decisions'):",
                      file=out)
                print(f"               {cmd}", file=out)
    for d in report["metric_drift"]:
        print(f"  metric drift: {d['name']} {d['baseline']} -> {d['current']}", file=out)
    if report["metric_drift"]:
        print(f"{len(report['metric_drift'])} deterministic metric(s) drifted — fine "
              "for a deliberate algorithm change; re-record the baseline to "
              "acknowledge", file=out)
    if report["verdict"] == "fail":
        print(f"{report['regressions']} benchmark(s) regressed beyond "
              f"{report['tolerance']:.0%}", file=out)
    elif report["comparable"]:
        print("bench check passed" if report["verdict"] == "pass"
              else f"bench check: {report['verdict']}", file=out)
    else:
        print("bench check done (not gated)", file=out)


def cmd_check(args):
    # With --json - the report owns stdout; route the table to stderr.
    text_out = sys.stderr if args.json == "-" else sys.stdout
    if not os.path.exists(args.baseline):
        print(f"no baseline at {os.path.relpath(args.baseline, REPO)}; "
              "run 'tools/bench_compare.py record' first", file=text_out)
        return 0
    baseline = load_json(args.baseline)
    if baseline.get("schema") != BASELINE_SCHEMA:
        sys.exit(f"error: unexpected baseline schema {baseline.get('schema')!r}")
    fp = fingerprint(args.build_dir)
    comparable = fp["id"] == baseline["fingerprint"]["id"]
    if not comparable:
        print(f"note: environment differs from baseline ({fp['id']} vs "
              f"{baseline['fingerprint']['id']}, recorded on "
              f"{baseline['fingerprint']['cpu']}); timings reported but not gated",
              file=text_out)

    bench_args = baseline.get("bench_args", {})
    bench, profile, _rates = run_google_benchmark(
        args.build_dir,
        bench_args.get("min_time", args.min_time),
        bench_args.get("repetitions", args.repetitions),
        args.filter,
    )
    metrics = deterministic_metrics(args.build_dir)
    metrics.update(campaign_aggregates(args.build_dir))

    report = compare(baseline, bench, metrics, args.tolerance, comparable,
                     profile, build_dir=args.build_dir)
    report["baseline_rev"] = baseline.get("rev", "unknown")
    report["rev"] = git_rev()
    print_report(report, out=text_out)

    if args.json:
        if args.json == "-":
            json.dump(report, sys.stdout, indent=1, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w") as f:
                json.dump(report, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"wrote {os.path.relpath(args.json, REPO)}", file=text_out)

    return 2 if report["verdict"] == "fail" else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("mode", nargs="?", choices=["record", "check"])
    ap.add_argument("--record", action="store_true", help="alias for the record mode")
    ap.add_argument("--check", action="store_true", help="alias for the check mode")
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "bench", "baselines", "runtime_scaling.json"))
    ap.add_argument("--trajectory", default=os.path.join(REPO, "BENCH_runtime_scaling.json"))
    ap.add_argument("--filter", default="", help="--benchmark_filter regex")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="check mode: also write a noceas.bench_compare.v1 "
                         "report to PATH ('-' for stdout)")
    ap.add_argument("--min-time", default="0.05", help="--benchmark_min_time per benchmark")
    ap.add_argument("--repetitions", type=int, default=3)
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="relative timing tolerance before flagging (default 35%%)")
    args = ap.parse_args()

    mode = args.mode or ("record" if args.record else "check" if args.check else None)
    if mode is None:
        ap.error("choose a mode: record | check (or --record / --check)")
    return cmd_record(args) if mode == "record" else cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
