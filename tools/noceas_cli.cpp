// noceas command-line driver.
//
// Ships a scheduling problem as two text files (CTG + platform spec) and
// replays it with any scheduler of the library:
//
//   noceas_cli gen       --category 1 --index 0 --ctg g.txt --platform p.txt
//   noceas_cli info      --ctg g.txt
//   noceas_cli schedule  --ctg g.txt --platform p.txt [--scheduler eas]
//                        [--gantt] [--svg out.svg] [--link-heat] [--dot out.dot]
//                        [--simulate] [--dvs] [--trace t.json] [--metrics m.json]
//                        [--decisions d.jsonl] [--schedule-out s.txt]
//   noceas_cli explain   --decisions d.jsonl --task 7
//   noceas_cli audit     --replay --decisions d.jsonl --ctg g.txt --platform p.txt
//   noceas_cli validate  --schedule s.txt --ctg g.txt --platform p.txt
//   noceas_cli analyze   --ctg g.txt --platform p.txt [--scheduler eas]
//                        [--json out.json] [--compare edf] [--svg out.svg]
//   noceas_cli campaign  --out DIR --categories 1,2 [--indices 0,1] [--msb encoder:foreman]
//                        [--seeds 20 | --seed-list 3,7,9] [--schedulers eas,edf,dls]
//                        [--threads N] [--artifacts] [--shard i/N] [--resume [DIR]]
//   noceas_cli campaign merge --out DIR --shards DIR0,DIR1,DIR2
//   noceas_cli diff      --ctg g.txt --platform p.txt --scheduler-a eas --decisions-b d.jsonl
//   noceas_cli diff      --campaign-a DIR --campaign-b DIR
//
// Schedulers: eas (default), eas-base, edf, dls, greedy, map.
// Unknown flags are rejected with an error (no silent typo swallowing).
// The global --log-level error|warn|info flag (or NOCEAS_LOG) gates the
// toolchain's diagnostic prints on stderr.
//
// Exit codes are machine-readable failure classes (campaign + CI depend on
// them):
//   0  success (for `schedule`: all deadlines met; for `diff`: empty diff)
//   1  run failed (unreadable input, scheduler error, deadline misses,
//      failed campaign runs, non-empty diff)
//   2  bad invocation (unknown command, unknown flag, missing required flag)
//   3  validation / replay mismatch (`audit --replay`, `validate`)
//   4  incompatible shard set (`campaign merge`: overlapping, missing,
//      incomplete, or fingerprint-mismatched shards; one machine-readable
//      "campaign merge: reason=<slug> ..." line on stderr)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/analysis/analysis.hpp"
#include "src/audit/decision_log.hpp"
#include "src/audit/explain.hpp"
#include "src/audit/replay.hpp"
#include "src/baseline/dls.hpp"
#include "src/baseline/edf.hpp"
#include "src/baseline/greedy_energy.hpp"
#include "src/baseline/map_then_schedule.hpp"
#include "src/campaign/aggregate.hpp"
#include "src/campaign/campaign.hpp"
#include "src/campaign/manifest_io.hpp"
#include "src/campaign/shard.hpp"
#include "src/core/eas.hpp"
#include "src/core/schedule_io.hpp"
#include "src/core/validator.hpp"
#include "src/ctg/serialize.hpp"
#include "src/dvs/slack_reclaim.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/noc/platform_io.hpp"
#include "src/obs/diff.hpp"
#include "src/obs/profile.hpp"
#include "src/obs/telemetry.hpp"
#include "src/sim/wormhole_sim.hpp"
#include "src/util/log.hpp"
#include "src/util/table.hpp"
#include "src/viz/gantt_svg.hpp"

using namespace noceas;

namespace {

// Exit-code classes (documented in the file header and docs/USAGE.md).
constexpr int kExitOk = 0;
constexpr int kExitRunFailed = 1;
constexpr int kExitBadInvocation = 2;
constexpr int kExitMismatch = 3;
constexpr int kExitShardMerge = 4;

/// Bad invocation: unknown command/flag or a missing required flag.
/// Distinct from noceas::Error so main() can map it to its own exit code.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws UsageError when a required flag combination is not satisfied.
void require_usage(bool ok, const std::string& msg) {
  if (!ok) throw UsageError(msg);
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  noceas_cli gen --category <1|2> --index <0..9> --ctg FILE [--platform FILE]\n"
      "  noceas_cli gen --msb <encoder|decoder|encdec> --clip <akiyo|foreman|toybox>\n"
      "             --ctg FILE [--platform FILE]\n"
      "  noceas_cli info --ctg FILE\n"
      "  noceas_cli schedule --ctg FILE --platform FILE\n"
      "             [--scheduler eas|eas-base|edf|dls|greedy|map]\n"
      "             [--gantt] [--svg FILE] [--link-heat] [--dot FILE] [--simulate] [--dvs]\n"
      "             [--trace FILE] [--metrics FILE] [--decisions FILE] [--schedule-out FILE]\n"
      "             [--profile FILE] [--profile-folded FILE] [--timeseries FILE]\n"
      "  noceas_cli explain --decisions FILE --task ID\n"
      "  noceas_cli audit --replay --decisions FILE --ctg FILE --platform FILE\n"
      "             [--profile FILE] [--profile-folded FILE]\n"
      "  noceas_cli validate --schedule FILE --ctg FILE --platform FILE [--deadlines]\n"
      "  noceas_cli analyze --ctg FILE --platform FILE\n"
      "             [--scheduler eas|eas-base|edf|dls|greedy|map | --schedule FILE]\n"
      "             [--decisions FILE] [--json FILE] [--metrics FILE] [--svg FILE]\n"
      "             [--top N] [--compare SCHEDULER] [--profile FILE] [--profile-folded FILE]\n"
      "  noceas_cli campaign --out DIR\n"
      "             [--categories 1,2] [--indices 0,1,..] [--msb APP[:CLIP],..]\n"
      "             [--seeds N | --seed-list 3,7,9] [--schedulers eas,edf,dls]\n"
      "             [--threads N] [--artifacts] [--profile]\n"
      "             [--shard i/N] [--resume [DIR]]\n"
      "             [--progress] [--timeseries] [--telemetry-interval-ms N]\n"
      "             [--stall-multiplier X] [--stall-floor-ms N]\n"
      "  noceas_cli campaign merge --out DIR --shards DIR0,DIR1,..\n"
      "  noceas_cli timeseries summarize --in FILE [--json FILE]\n"
      "  noceas_cli diff [--ctg FILE --platform FILE]\n"
      "             --scheduler-a NAME | --decisions-a FILE | --schedule-a FILE\n"
      "             --scheduler-b NAME | --decisions-b FILE | --schedule-b FILE\n"
      "             [--json FILE] [--top N]\n"
      "  noceas_cli diff --campaign-a DIR --campaign-b DIR [--json FILE] [--top N]\n"
      "\n"
      "global flags (any command):\n"
      "  --log-level error|warn|info   gate diagnostic stderr prints (also the\n"
      "                                NOCEAS_LOG environment variable; the flag wins)\n"
      "\n"
      "schedule observability flags:\n"
      "  --trace FILE    write a Chrome trace-event JSON of the scheduler run\n"
      "                  (open in ui.perfetto.dev or chrome://tracing)\n"
      "  --metrics FILE  write the metrics registry JSON (probe cache hit rate,\n"
      "                  per-PE busy fraction, per-link utilization, ...)\n"
      "  --profile FILE  write the span-statistics profile (noceas.profile.v1:\n"
      "                  per-call-path count/total/self-time/min/max/p50/p95/p99;\n"
      "                  aggregated inline at span close, never truncated)\n"
      "  --profile-folded FILE  write the collapsed-stack text (weight = self ns;\n"
      "                  load in speedscope.app or FlameGraph)\n"
      "  --timeseries FILE  sample the metrics registry + process stats into a\n"
      "                  noceas.timeseries.v1 JSONL stream while the run executes\n"
      "                  (every 250 ms; fold it with `timeseries summarize`)\n"
      "  --link-heat     tint the --svg link lanes by utilization\n"
      "  --decisions FILE     write the decision provenance JSONL\n"
      "                       (schema noceas.decisions.v1; input to explain/audit)\n"
      "  --schedule-out FILE  export the schedule as text (input to validate)\n"
      "\n"
      "explain prints the candidate table, applied rule and link reservations of\n"
      "one placement decision; audit --replay re-executes the decision stream and\n"
      "proves it reproduces the recorded schedule bit-for-bit; validate runs the\n"
      "standalone invariant checks on an exported schedule.\n"
      "\n"
      "analyze runs the post-hoc schedule analytics (critical path, exact wait\n"
      "decomposition, utilization/contention timelines, slack and energy\n"
      "attribution).  It schedules the instance itself (--scheduler, recording\n"
      "decision provenance in-memory for blocker cross-referencing) or consumes\n"
      "an exported schedule (--schedule, optionally with --decisions).  --json\n"
      "writes the noceas.analysis.v1 document, --svg a Gantt with critical-path\n"
      "and contention overlays, --compare a second scheduler's report diffed\n"
      "against the first.\n"
      "\n"
      "campaign executes the (app x seed x scheduler) matrix concurrently and\n"
      "writes a manifest directory: manifest.json (noceas.campaign.v1, one\n"
      "deterministic outcome row per run), aggregate.json (per-scheduler\n"
      "distributions, miss rates, win matrices, outliers), resources.json\n"
      "(wall/CPU/peak-RSS samples) and dashboard.html (self-contained HTML).\n"
      "--artifacts additionally records per-run metrics/analysis/decisions\n"
      "under runs/.  manifest.json and aggregate.json are byte-identical for\n"
      "any --threads value.\n"
      "\n"
      "campaign sharding (fleet scale-out; see docs/OBSERVABILITY.md):\n"
      "  --shard i/N     execute only units with global index = i (mod N) and\n"
      "                  write shard.jsonl (noceas.campaign.shard.v1) instead of\n"
      "                  the manifest/aggregate/dashboard trio\n"
      "  --resume [DIR]  reuse validated rows (and artifact files, checked\n"
      "                  against their recorded hashes) from DIR's shard.jsonl\n"
      "                  (default: --out DIR itself), re-running the rest;\n"
      "                  incompatible with --profile\n"
      "  campaign merge --out DIR --shards DIR0,DIR1,..  combines N shard\n"
      "                  directories into the byte-identical 1-process\n"
      "                  manifest/aggregate/dashboard, fleet-merged profile,\n"
      "                  fleet resources.json, concatenated telemetry streams,\n"
      "                  and a per-shard-lane fleet timeline.html; refuses\n"
      "                  overlapping/missing/incompatible shard sets with exit 4\n"
      "                  and one machine-readable reason line on stderr\n"
      "\n"
      "campaign live telemetry (all outside the determinism contract —\n"
      "manifest/aggregate/dashboard bytes never change with these on or off):\n"
      "  --progress      write progress.jsonl (noceas.progress.v1: one event per\n"
      "                  unit start/finish/error with done/total + EWMA ETA, plus\n"
      "                  stall events from the watchdog) and, when stderr is a\n"
      "                  terminal, render a live single-line ticker\n"
      "  --timeseries    write timeseries.jsonl (noceas.timeseries.v1 sampler\n"
      "                  stream) and timeline.html (fleet timeline strip)\n"
      "  --telemetry-interval-ms N   sampler/watchdog period (default 250)\n"
      "  --stall-multiplier X  a unit is stalled after X x the rolling median\n"
      "                  unit wall time (default 20; arms after 2 finishes)\n"
      "  --stall-floor-ms N    ...but never earlier than N ms (default 1000)\n"
      "\n"
      "timeseries summarize folds a noceas.timeseries.v1 or noceas.progress.v1\n"
      "JSONL stream into a deterministic-shape summary (per-series\n"
      "count/min/max/last; per-unit event counts).  --json writes the\n"
      "noceas.stream.summary.v1 document.\n"
      "\n"
      "diff explains how two runs (or two campaigns) diverged.  Each side is a\n"
      "live scheduler run (--scheduler-a/-b, needs --ctg/--platform), a recorded\n"
      "decision stream (--decisions-a/-b) or an exported schedule\n"
      "(--schedule-a/-b).  It reports the first divergent decision with the\n"
      "side-by-side candidate table and link reservations, then the downstream\n"
      "impact (energy attribution, critical-path reason mix, wait decomposition,\n"
      "deadline accounting; computed when --ctg/--platform are given).  Campaign\n"
      "mode diffs two manifest directories after verifying each aggregate\n"
      "reconciles bit-exactly with its manifest: per-unit deltas, regressed and\n"
      "improved units ranked by |d energy| then |d makespan|, win-matrix flips.\n"
      "--json writes the deterministic noceas.diff.v1 document.  Exit 0 = empty\n"
      "diff, 1 = divergence found.\n"
      "\n"
      "exit codes: 0 success, 1 run failed (incl. deadline misses),\n"
      "2 bad invocation, 3 validation/replay mismatch,\n"
      "4 incompatible shard set (campaign merge).\n";
  return kExitBadInvocation;
}

/// Parses `--flag [value]` pairs.  A flag not in `allowed` is a usage error
/// (exit 2): a typo must never be silently ignored.
std::map<std::string, std::string> parse_flags(int argc, char** argv, int first,
                                               const std::vector<std::string>& allowed) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    require_usage(arg.rfind("--", 0) == 0,
                  "unexpected argument '" + arg + "' (flags start with --)");
    arg = arg.substr(2);
    require_usage(std::find(allowed.begin(), allowed.end(), arg) != allowed.end(),
                  "unknown flag '--" + arg + "' for command '" + argv[1] +
                      "' (run noceas_cli without arguments for usage)");
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

TaskGraph load_ctg(const std::string& path) {
  std::ifstream is(path);
  NOCEAS_REQUIRE(is.good(), "cannot open CTG file '" << path << '\'');
  return read_ctg(is);
}

Platform load_platform(const std::string& path) {
  std::ifstream is(path);
  NOCEAS_REQUIRE(is.good(), "cannot open platform file '" << path << '\'');
  return read_platform(is);
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("ctg") > 0, "gen requires --ctg FILE");
  TaskGraph g(1);
  Platform p = make_mesh_platform(1, 1, {"NONE"});
  if (flags.count("msb")) {
    const std::string which = flags.at("msb");
    ClipProfile clip = clip_foreman();
    if (flags.count("clip")) {
      for (const ClipProfile& c : all_clips()) {
        if (c.name == flags.at("clip")) clip = c;
      }
    }
    const bool small = which != "encdec";
    const PeCatalog catalog = small ? msb_catalog_2x2() : msb_catalog_3x3();
    p = small ? msb_platform_2x2() : msb_platform_3x3();
    g = which == "encoder"   ? make_av_encoder(clip, catalog)
        : which == "decoder" ? make_av_decoder(clip, catalog)
                             : make_av_encdec(clip, catalog);
  } else {
    const int category = flags.count("category") ? std::stoi(flags.at("category")) : 1;
    const int index = flags.count("index") ? std::stoi(flags.at("index")) : 0;
    const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
    p = make_platform_for(catalog, 4, 4);
    g = generate_tgff_like(category_params(category, index), catalog);
  }

  {
    std::ofstream os(flags.at("ctg"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("ctg") << '\'');
    write_ctg(os, g);
  }
  std::cout << "wrote " << flags.at("ctg") << " (" << g.num_tasks() << " tasks, "
            << g.num_edges() << " edges)\n";
  if (flags.count("platform")) {
    std::ofstream os(flags.at("platform"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("platform") << '\'');
    write_platform(os, p);
    std::cout << "wrote " << flags.at("platform") << " (" << p.num_pes() << " PEs)\n";
  }
  return 0;
}

int cmd_info(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("ctg") > 0, "info requires --ctg FILE");
  const TaskGraph g = load_ctg(flags.at("ctg"));
  std::size_t with_deadline = 0, control_edges = 0;
  Volume total_volume = 0;
  for (TaskId t : g.all_tasks())
    if (g.task(t).has_deadline()) ++with_deadline;
  for (EdgeId e : g.all_edges()) {
    if (g.edge(e).is_control_only())
      ++control_edges;
    else
      total_volume += g.edge(e).volume;
  }
  std::cout << "tasks:            " << g.num_tasks() << '\n'
            << "edges:            " << g.num_edges() << " (" << control_edges << " control)\n"
            << "PEs targeted:     " << g.num_pes() << '\n'
            << "with deadline:    " << with_deadline << '\n'
            << "sources/sinks:    " << g.sources().size() << '/' << g.sinks().size() << '\n'
            << "total volume:     " << total_volume << " bits\n";
  return 0;
}

/// Runs one scheduler by name (optional span sink and decision recording) —
/// the analyze verb's way of producing schedules to dissect.
/// For the repairing eas flow, `repair_out` (when non-null) receives the
/// canonical attempt's RepairStats so callers can report rebuild economics.
Schedule run_named_scheduler(const TaskGraph& g, const Platform& p, const std::string& which,
                             audit::DecisionLog* decisions,
                             RepairStats* repair_out = nullptr,
                             obs::Tracer* tracer = nullptr) {
  if (which == "eas" || which == "eas-base") {
    EasOptions options;
    options.repair = which == "eas";
    options.tracer = tracer;
    options.decisions = decisions;
    EasResult r = schedule_eas(g, p, options);
    if (repair_out != nullptr && options.repair) *repair_out = r.repair;
    return std::move(r.schedule);
  }
  if (which == "map") {
    MapScheduleOptions options;
    options.obs = BaselineObs{tracer, nullptr, decisions};
    return schedule_map_then_list(g, p, options).result.schedule;
  }
  const BaselineObs obs{tracer, nullptr, decisions};
  if (which == "edf") return schedule_edf(g, p, obs).schedule;
  if (which == "dls") return schedule_dls(g, p, obs).schedule;
  if (which == "greedy") return schedule_greedy_energy(g, p, obs).schedule;
  NOCEAS_REQUIRE(false, "unknown scheduler '" << which << '\'');
}

bool wants_profile(const std::map<std::string, std::string>& flags) {
  return flags.count("profile") > 0 || flags.count("profile-folded") > 0;
}

/// --profile/--profile-folded epilogue shared by schedule/analyze/audit:
/// snapshots the profiler against the tracer's wall clock and writes the
/// requested exports ("noceas.profile.v1" JSON with timings; collapsed-stack
/// folded text for speedscope/FlameGraph).
void write_profile_outputs(const std::map<std::string, std::string>& flags,
                           const obs::Profiler& profiler, const obs::Tracer& tracer) {
  const obs::ProfileSnapshot snap = profiler.snapshot(tracer.now_ns());
  if (flags.count("profile")) {
    std::ofstream os(flags.at("profile"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("profile") << '\'');
    obs::write_profile_json(os, snap, /*include_timings=*/true);
    std::cout << "wrote " << flags.at("profile") << " (" << snap.records.size()
              << " call paths)\n";
  }
  if (flags.count("profile-folded")) {
    std::ofstream os(flags.at("profile-folded"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("profile-folded") << '\'');
    obs::write_profile_folded(os, snap);
    std::cout << "wrote " << flags.at("profile-folded") << '\n';
  }
}

int cmd_schedule(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("ctg") && flags.count("platform"),
                "schedule requires --ctg FILE and --platform FILE");
  const TaskGraph g = load_ctg(flags.at("ctg"));
  const Platform p = load_platform(flags.at("platform"));
  const std::string which = flags.count("scheduler") ? flags.at("scheduler") : "eas";

  // Observability sinks, attached only when requested.  --profile attaches
  // the streaming span profiler to the tracer spine; without --trace the
  // spine stores no events (aggregation only, nothing to drop).
  const bool profile = wants_profile(flags);
  obs::Profiler profiler;
  obs::TracerOptions tracer_options;
  tracer_options.record_events = flags.count("trace") > 0;
  tracer_options.profiler = profile ? &profiler : nullptr;
  obs::Tracer tracer(tracer_options);
  obs::Registry registry;
  audit::DecisionLog decision_log;
  obs::Tracer* const tr = (flags.count("trace") || profile) ? &tracer : nullptr;
  // --timeseries samples the registry live, so it needs the metrics sink
  // attached even without --metrics (which alone controls the file write).
  obs::Registry* const metrics =
      (flags.count("metrics") || flags.count("timeseries")) ? &registry : nullptr;
  audit::DecisionLog* const decisions = flags.count("decisions") ? &decision_log : nullptr;

  // Live time series of the run: registry values + process stats, sampled
  // every 250 ms into a noceas.timeseries.v1 JSONL stream.
  std::ofstream timeseries_file;
  std::unique_ptr<obs::TelemetryHub> hub;
  if (flags.count("timeseries")) {
    timeseries_file.open(flags.at("timeseries"));
    NOCEAS_REQUIRE(timeseries_file.good(), "cannot write '" << flags.at("timeseries") << '\'');
    obs::TelemetryOptions topt;
    topt.timeseries = &timeseries_file;
    topt.registry = &registry;
    hub = std::make_unique<obs::TelemetryHub>(topt);
  }

  Schedule s;
  EnergyBreakdown energy;
  MissReport misses;
  double seconds = 0.0;
  RepairStats repair;
  bool have_repair = false;
  if (which == "eas" || which == "eas-base") {
    EasOptions options;
    options.repair = which == "eas";
    options.tracer = tr;
    options.metrics = metrics;
    options.decisions = decisions;
    const EasResult r = schedule_eas(g, p, options);
    s = r.schedule;
    energy = r.energy;
    misses = r.misses;
    seconds = r.seconds;
    repair = r.repair;
    have_repair = options.repair;
  } else if (which == "map") {
    MapScheduleOptions options;
    options.obs = BaselineObs{tr, metrics, decisions};
    const MapScheduleResult r = schedule_map_then_list(g, p, options);
    s = r.result.schedule;
    energy = r.result.energy;
    misses = r.result.misses;
    seconds = r.result.seconds;
  } else {
    const BaselineObs baseline_obs{tr, metrics, decisions};
    BaselineResult r;
    if (which == "edf")
      r = schedule_edf(g, p, baseline_obs);
    else if (which == "dls")
      r = schedule_dls(g, p, baseline_obs);
    else if (which == "greedy")
      r = schedule_greedy_energy(g, p, baseline_obs);
    else
      NOCEAS_REQUIRE(false, "unknown scheduler '" << which << '\'');
    s = r.schedule;
    energy = r.energy;
    misses = r.misses;
    seconds = r.seconds;
  }

  const ValidationReport vr = validate_schedule(g, p, s, {.check_deadlines = false});
  NOCEAS_REQUIRE(vr.ok(), "scheduler produced an invalid schedule:\n" << vr.to_string());

  std::cout << "scheduler:       " << which << '\n'
            << "energy:          " << format_double(energy.total(), 1) << " nJ (comp "
            << format_double(energy.computation, 1) << ", comm "
            << format_double(energy.communication, 1) << ")\n"
            << "makespan:        " << makespan(s) << '\n'
            << "deadline misses: " << misses.miss_count << " (tardiness "
            << misses.total_tardiness << ")\n"
            << "avg hops/packet: " << format_double(average_hops_per_packet(g, p, s), 2) << '\n'
            << "runtime:         " << format_double(seconds, 3) << " s\n";
  if (have_repair) {
    std::cout << "repair:          " << repair.lts_accepted << "/" << repair.lts_tried
              << " LTS, " << repair.gtm_accepted << "/" << repair.gtm_tried << " GTM accepted ("
              << repair.rounds << " rounds)\n"
              << "repair rebuilds: " << repair.rebuilds << " (" << repair.full_rebuilds
              << " full, " << repair.suffix_rebuilds << " suffix, "
              << format_double(100.0 * repair.suffix_reuse_rate(), 1) << "% commits reused, "
              << repair.bound_aborts << " bound-aborted)\n";
  }

  if (flags.count("gantt")) print_gantt(std::cout, g, p, s);
  if (flags.count("svg")) {
    std::ofstream os(flags.at("svg"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("svg") << '\'');
    GanttSvgOptions svg_options;
    svg_options.show_link_heat = flags.count("link-heat") > 0;
    svg_options.show_critical_path = flags.count("critical-path") > 0;
    svg_options.show_contention = flags.count("contention") > 0;
    svg_options.title = which + " schedule";
    write_gantt_svg(os, g, p, s, svg_options);
    std::cout << "wrote " << flags.at("svg") << '\n';
  }
  if (flags.count("dot")) {
    std::ofstream os(flags.at("dot"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("dot") << '\'');
    g.to_dot(os);
    std::cout << "wrote " << flags.at("dot") << '\n';
  }
  if (flags.count("simulate")) {
    SimOptions sim_options;
    sim_options.tracer = tr;
    sim_options.metrics = metrics;
    const SimReport sim = simulate_schedule(g, p, s, sim_options);
    std::cout << "simulated:       makespan " << sim.makespan << ", misses "
              << sim.misses.miss_count << ", avg packet latency "
              << format_double(sim.avg_packet_latency, 1) << " cycles\n";
  }
  if (flags.count("dvs")) {
    DvsOptions dvs_options;
    dvs_options.tracer = tr;
    dvs_options.metrics = metrics;
    const DvsResult dvs = reclaim_slack(g, p, s, dvs_options);
    std::cout << "DVS reclaims:    " << format_double(dvs.saved(), 1) << " nJ ("
              << dvs.slowed_tasks << " tasks slowed)\n";
  }
  if (flags.count("trace")) {
    std::ofstream os(flags.at("trace"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("trace") << '\'');
    tracer.write_chrome_json(os);
    std::cout << "wrote " << flags.at("trace") << " (" << tracer.size() << " events)\n";
  }
  // Dropped events are a data-integrity problem for trace consumers:
  // surface them as a metric and a loud warning, never silently.
  if (tr != nullptr && metrics != nullptr) {
    registry.counter("obs.trace.dropped", "events").inc(tracer.dropped());
  }
  if (tracer.dropped() > 0) {
    NOCEAS_WARN("trace ring buffers overwrote "
                << tracer.dropped()
                << " events (raise TracerOptions::max_events_per_lane); "
                   "per-lane drop counts are in the trace header");
  }
  if (hub != nullptr) {
    hub->stop();  // final sample, so even a sub-250 ms run yields data
    std::cout << "wrote " << flags.at("timeseries") << " (" << hub->timeline().size()
              << " samples)\n";
  }
  if (profile) write_profile_outputs(flags, profiler, tracer);
  if (flags.count("metrics")) {
    std::ofstream os(flags.at("metrics"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("metrics") << '\'');
    registry.write_json(os);
    std::cout << "wrote " << flags.at("metrics") << '\n';
  }
  if (decisions != nullptr) {
    std::ofstream os(flags.at("decisions"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("decisions") << '\'');
    decision_log.write_jsonl(os);
    std::cout << "wrote " << flags.at("decisions") << " (" << decision_log.size()
              << " decisions)\n";
  }
  if (flags.count("schedule-out")) {
    std::ofstream os(flags.at("schedule-out"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("schedule-out") << '\'');
    write_schedule_text(os, s);
    std::cout << "wrote " << flags.at("schedule-out") << '\n';
  }
  return misses.all_met() ? 0 : 1;
}

audit::DecisionStream load_decisions(const std::string& path) {
  std::ifstream is(path);
  NOCEAS_REQUIRE(is.good(), "cannot open decision file '" << path << '\'');
  return audit::read_decision_stream(is);
}

int cmd_explain(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("decisions") && flags.count("task"),
                "explain requires --decisions FILE and --task ID");
  const audit::DecisionStream stream = load_decisions(flags.at("decisions"));
  audit::explain_task(std::cout, stream, std::stoi(flags.at("task")));
  return 0;
}

int cmd_audit(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("decisions") && flags.count("ctg") && flags.count("platform"),
                "audit requires --decisions FILE, --ctg FILE and --platform FILE");
  // --replay is the only audit mode today; accept (and document) it anyway so
  // the invocation reads as what it does.
  const audit::DecisionStream stream = load_decisions(flags.at("decisions"));
  const TaskGraph g = load_ctg(flags.at("ctg"));
  const Platform p = load_platform(flags.at("platform"));

  const bool profile = wants_profile(flags);
  obs::Profiler profiler;
  obs::TracerOptions spine_options;
  spine_options.record_events = false;
  spine_options.profiler = &profiler;
  obs::Tracer spine(spine_options);

  const audit::ReplayReport report =
      replay_decisions(g, p, stream, profile ? &spine : nullptr);
  if (profile) write_profile_outputs(flags, profiler, spine);
  std::cout << "scheduler:  " << stream.scheduler << '\n'
            << "attempts:   " << report.attempts << '\n'
            << "placements: " << report.placements << '\n'
            << "moves:      " << report.moves << '\n';
  if (report.ok) {
    std::cout << "replay OK: decision stream reproduces the recorded schedule "
                 "bit-for-bit and passes all invariant checks\n";
    return 0;
  }
  std::cout << "replay FAILED:\n";
  for (const std::string& issue : report.issues) std::cout << "  " << issue << '\n';
  return kExitMismatch;
}

int cmd_analyze(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("ctg") && flags.count("platform"),
                "analyze requires --ctg FILE and --platform FILE");
  require_usage(!(flags.count("schedule") && flags.count("scheduler")),
                "--schedule FILE and --scheduler NAME are mutually exclusive");
  const TaskGraph g = load_ctg(flags.at("ctg"));
  const Platform p = load_platform(flags.at("platform"));

  // Span profiler covering both the scheduling run (when analyze schedules
  // itself) and the analysis phases.
  const bool profile = wants_profile(flags);
  obs::Profiler profiler;
  obs::TracerOptions spine_options;
  spine_options.record_events = false;
  spine_options.profiler = &profiler;
  obs::Tracer spine(spine_options);
  obs::Tracer* const tr = profile ? &spine : nullptr;

  // The schedule under analysis: an exported file, or a fresh scheduler run
  // with in-memory decision provenance for blocker cross-referencing.
  Schedule s;
  audit::DecisionLog decision_log;
  audit::DecisionStream loaded_stream;
  const audit::DecisionStream* stream = nullptr;
  std::string label;
  RepairStats repair;
  bool have_repair = false;
  if (flags.count("schedule")) {
    std::ifstream is(flags.at("schedule"));
    NOCEAS_REQUIRE(is.good(), "cannot open schedule file '" << flags.at("schedule") << '\'');
    s = read_schedule_text(is);
    label = flags.at("schedule");
    if (flags.count("decisions")) {
      loaded_stream = load_decisions(flags.at("decisions"));
      stream = &loaded_stream;
    }
  } else {
    label = flags.count("scheduler") ? flags.at("scheduler") : "eas";
    s = run_named_scheduler(g, p, label, &decision_log, &repair, tr);
    stream = &decision_log.stream();
    have_repair = label == "eas";
  }
  const ValidationReport vr = validate_schedule(g, p, s, {.check_deadlines = false});
  NOCEAS_REQUIRE(vr.ok(), "schedule fails invariant checks:\n" << vr.to_string());

  obs::Registry registry;
  analysis::AnalyzeOptions options;
  options.label = label;
  options.decisions = stream;
  options.metrics = flags.count("metrics") ? &registry : nullptr;
  options.tracer = tr;
  const analysis::Report report = analyze_schedule(g, p, s, options);

  if (flags.count("json")) {
    std::ofstream os(flags.at("json"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("json") << '\'');
    write_analysis_json(os, report);
    std::cout << "wrote " << flags.at("json") << '\n';
  } else {
    const std::size_t top = flags.count("top")
                                ? static_cast<std::size_t>(std::stoul(flags.at("top")))
                                : 5;
    print_analysis(std::cout, g, p, report, top);
    if (have_repair) {
      std::cout << "\nrepair economics (canonical attempt):\n"
                << "  moves:    " << repair.lts_accepted << "/" << repair.lts_tried << " LTS, "
                << repair.gtm_accepted << "/" << repair.gtm_tried << " GTM accepted in "
                << repair.rounds << " rounds\n"
                << "  rebuilds: " << repair.rebuilds << " (" << repair.full_rebuilds << " full, "
                << repair.suffix_rebuilds << " suffix), "
                << format_double(100.0 * repair.suffix_reuse_rate(), 1)
                << "% commits reused, " << repair.bound_aborts << " bound-aborted\n";
    }
  }
  if (flags.count("metrics")) {
    std::ofstream os(flags.at("metrics"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("metrics") << '\'');
    registry.write_json(os);
    std::cout << "wrote " << flags.at("metrics") << '\n';
  }
  if (flags.count("svg")) {
    std::ofstream os(flags.at("svg"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("svg") << '\'');
    GanttSvgOptions svg_options;
    svg_options.show_link_heat = true;
    svg_options.show_critical_path = true;
    svg_options.show_contention = true;
    svg_options.title = label + " (critical path + contention)";
    write_gantt_svg(os, g, p, s, svg_options);
    std::cout << "wrote " << flags.at("svg") << '\n';
  }
  if (flags.count("compare")) {
    const std::string other = flags.at("compare");
    audit::DecisionLog other_log;
    const Schedule s2 = run_named_scheduler(g, p, other, &other_log, nullptr, tr);
    analysis::AnalyzeOptions other_options;
    other_options.label = other;
    other_options.decisions = &other_log.stream();
    other_options.tracer = tr;
    const analysis::Report other_report = analyze_schedule(g, p, s2, other_options);
    std::cout << '\n';
    print_analysis_diff(std::cout, report, other_report);
  }
  if (profile) write_profile_outputs(flags, profiler, spine);
  return 0;
}

int cmd_validate(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("schedule") && flags.count("ctg") && flags.count("platform"),
                "validate requires --schedule FILE, --ctg FILE and --platform FILE");
  std::ifstream is(flags.at("schedule"));
  NOCEAS_REQUIRE(is.good(), "cannot open schedule file '" << flags.at("schedule") << '\'');
  const Schedule s = read_schedule_text(is);
  const TaskGraph g = load_ctg(flags.at("ctg"));
  const Platform p = load_platform(flags.at("platform"));
  const ValidationReport report =
      validate_schedule(g, p, s, {.check_deadlines = flags.count("deadlines") > 0});
  if (report.ok()) {
    std::cout << "schedule valid: " << g.num_tasks() << " tasks, " << g.num_edges()
              << " comms pass all invariant checks\n";
    return 0;
  }
  std::cout << report.to_string();
  return kExitMismatch;
}

/// One resolved side of a `diff` invocation: a schedule (always), plus the
/// decision stream when the side was produced live or loaded from a
/// provenance file.
struct DiffSide {
  std::string label;
  Schedule schedule;
  audit::DecisionStream stream;
  bool has_stream = false;
};

/// Rebuilds the schedule a decision stream committed to from its final
/// record — lets `diff` compare a recorded run without re-executing it.
Schedule schedule_from_final(const audit::DecisionStream& stream) {
  NOCEAS_REQUIRE(stream.has_final,
                 "decision stream has no final record; cannot reconstruct the schedule "
                 "(re-export with a current noceas build or pass --schedule-* instead)");
  Schedule s;
  s.tasks.reserve(stream.final.tasks.size());
  for (const audit::FinalTask& t : stream.final.tasks) {
    s.tasks.push_back(TaskPlacement{PeId{t.pe}, t.start, t.finish});
  }
  s.comms.reserve(stream.final.comms.size());
  for (const audit::FinalComm& c : stream.final.comms) {
    s.comms.push_back(CommPlacement{PeId{c.src_pe}, PeId{c.dst_pe}, c.start, c.duration});
  }
  return s;
}

/// Resolves `--scheduler-X | --decisions-X | --schedule-X` for side X.
/// `g`/`p` are non-null only when --ctg/--platform were given (required for
/// live scheduler sides).
DiffSide load_diff_side(const std::map<std::string, std::string>& flags, const std::string& side,
                        const TaskGraph* g, const Platform* p) {
  const std::string sched_flag = "scheduler-" + side;
  const std::string dec_flag = "decisions-" + side;
  const std::string file_flag = "schedule-" + side;
  const int sources = static_cast<int>(flags.count(sched_flag)) +
                      static_cast<int>(flags.count(dec_flag)) +
                      static_cast<int>(flags.count(file_flag));
  require_usage(sources == 1, "diff side " + side + " needs exactly one of --" + sched_flag +
                                  " NAME, --" + dec_flag + " FILE, --" + file_flag + " FILE");
  DiffSide out;
  if (flags.count(sched_flag)) {
    require_usage(g != nullptr && p != nullptr,
                  "--" + sched_flag + " runs the scheduler live and needs --ctg and --platform");
    out.label = flags.at(sched_flag) + " (" + side + ')';
    audit::DecisionLog log;
    out.schedule = run_named_scheduler(*g, *p, flags.at(sched_flag), &log);
    out.stream = log.stream();
    out.has_stream = true;
  } else if (flags.count(dec_flag)) {
    out.label = flags.at(dec_flag);
    out.stream = load_decisions(flags.at(dec_flag));
    out.schedule = schedule_from_final(out.stream);
    out.has_stream = true;
  } else {
    out.label = flags.at(file_flag);
    std::ifstream is(flags.at(file_flag));
    NOCEAS_REQUIRE(is.good(), "cannot open schedule file '" << flags.at(file_flag) << '\'');
    out.schedule = read_schedule_text(is);
  }
  return out;
}

int cmd_diff(const std::map<std::string, std::string>& flags) {
  const std::size_t top = flags.count("top")
                              ? static_cast<std::size_t>(std::stoul(flags.at("top")))
                              : 10;
  const bool campaign_mode = flags.count("campaign-a") || flags.count("campaign-b");

  if (campaign_mode) {
    require_usage(flags.count("campaign-a") && flags.count("campaign-b"),
                  "campaign diff requires both --campaign-a DIR and --campaign-b DIR");
    auto load = [](const std::string& dir) {
      std::ifstream mis(dir + "/manifest.json");
      NOCEAS_REQUIRE(mis.good(), "cannot open '" << dir << "/manifest.json'");
      std::ifstream ais(dir + "/aggregate.json");
      NOCEAS_REQUIRE(ais.good(), "cannot open '" << dir << "/aggregate.json'");
      return std::pair{campaign::read_manifest_json(mis), campaign::read_aggregate_json(ais)};
    };
    const auto [ma, aa] = load(flags.at("campaign-a"));
    const auto [mb, ab] = load(flags.at("campaign-b"));
    const diff::CampaignDiff d = diff::diff_campaigns(ma, aa, mb, ab);
    diff::print_campaign_diff(std::cout, d, top);
    if (flags.count("json")) {
      std::ofstream os(flags.at("json"));
      NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("json") << '\'');
      diff::write_campaign_diff_json(os, d);
      std::cout << "wrote " << flags.at("json") << '\n';
    }
    return d.identical() ? kExitOk : kExitRunFailed;
  }

  require_usage(flags.count("ctg") == flags.count("platform"),
                "--ctg and --platform must be given together");
  TaskGraph g(1);
  Platform p = make_mesh_platform(1, 1, {"NONE"});
  const bool have_problem = flags.count("ctg") > 0;
  if (have_problem) {
    g = load_ctg(flags.at("ctg"));
    p = load_platform(flags.at("platform"));
  }
  const DiffSide a = load_diff_side(flags, "a", have_problem ? &g : nullptr,
                                    have_problem ? &p : nullptr);
  const DiffSide b = load_diff_side(flags, "b", have_problem ? &g : nullptr,
                                    have_problem ? &p : nullptr);

  diff::RunSide side_a{a.label, &a.schedule, a.has_stream ? &a.stream : nullptr, nullptr};
  diff::RunSide side_b{b.label, &b.schedule, b.has_stream ? &b.stream : nullptr, nullptr};

  // Downstream impact: route both schedules through the analyzer when the
  // problem instance is available.
  analysis::Report report_a, report_b;
  if (have_problem) {
    analysis::AnalyzeOptions options_a;
    options_a.label = a.label;
    options_a.decisions = side_a.stream;
    report_a = analyze_schedule(g, p, a.schedule, options_a);
    analysis::AnalyzeOptions options_b;
    options_b.label = b.label;
    options_b.decisions = side_b.stream;
    report_b = analyze_schedule(g, p, b.schedule, options_b);
    side_a.report = &report_a;
    side_b.report = &report_b;
  }

  const diff::RunDiff d = diff::diff_runs(side_a, side_b);
  diff::print_run_diff(std::cout, d, top);
  if (flags.count("json")) {
    std::ofstream os(flags.at("json"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("json") << '\'');
    diff::write_run_diff_json(os, d);
    std::cout << "wrote " << flags.at("json") << '\n';
  }
  return d.identical() ? kExitOk : kExitRunFailed;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmd_campaign(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("out") > 0, "campaign requires --out DIR");
  require_usage(flags.count("categories") || flags.count("msb"),
                "campaign requires at least one app source: --categories and/or --msb");
  require_usage(!(flags.count("seeds") && flags.count("seed-list")),
                "--seeds N and --seed-list a,b,c are mutually exclusive");
  require_usage(!(flags.count("resume") && flags.count("profile")),
                "--resume cannot be combined with --profile (per-unit profiles are "
                "not persisted per manifest row)");

  campaign::CampaignSpec spec;
  spec.out_dir = flags.at("out");
  if (flags.count("shard")) {
    const std::string& text = flags.at("shard");
    const std::size_t slash = text.find('/');
    require_usage(slash != std::string::npos && slash > 0 && slash + 1 < text.size(),
                  "--shard expects i/N (e.g. --shard 0/3)");
    try {
      spec.shard_index = static_cast<unsigned>(std::stoul(text.substr(0, slash)));
      spec.shard_count = static_cast<unsigned>(std::stoul(text.substr(slash + 1)));
    } catch (const std::exception&) {
      throw UsageError("--shard expects i/N (e.g. --shard 0/3)");
    }
    require_usage(spec.shard_count >= 1 && spec.shard_index < spec.shard_count,
                  "--shard i/N needs 0 <= i < N");
  }
  if (flags.count("resume")) {
    // Bare --resume resumes in place (the out dir's own shard.jsonl).
    spec.resume_from = flags.at("resume") == "1" ? spec.out_dir : flags.at("resume");
  }
  if (flags.count("categories")) {
    std::vector<int> indices = {0};
    if (flags.count("indices")) {
      indices.clear();
      for (const std::string& i : split_csv(flags.at("indices"))) indices.push_back(std::stoi(i));
    }
    for (const std::string& c : split_csv(flags.at("categories"))) {
      for (int index : indices) {
        campaign::AppSpec app;
        app.kind = campaign::AppSpec::Kind::Tgff;
        app.category = std::stoi(c);
        app.index = index;
        spec.apps.push_back(std::move(app));
      }
    }
  }
  if (flags.count("msb")) {
    for (const std::string& entry : split_csv(flags.at("msb"))) {
      campaign::AppSpec app;
      app.kind = campaign::AppSpec::Kind::Msb;
      const std::size_t colon = entry.find(':');
      app.msb_app = entry.substr(0, colon);
      if (colon != std::string::npos) app.msb_clip = entry.substr(colon + 1);
      spec.apps.push_back(std::move(app));
    }
  }
  if (flags.count("seed-list")) {
    spec.seeds.clear();
    for (const std::string& s : split_csv(flags.at("seed-list")))
      spec.seeds.push_back(std::stoull(s));
  } else if (flags.count("seeds")) {
    const int n = std::stoi(flags.at("seeds"));
    require_usage(n > 0, "--seeds N must be positive");
    spec.seeds.clear();
    for (int s = 1; s <= n; ++s) spec.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  if (flags.count("schedulers")) spec.schedulers = split_csv(flags.at("schedulers"));
  spec.threads = flags.count("threads")
                     ? static_cast<unsigned>(std::stoul(flags.at("threads")))
                     : std::max(1u, std::thread::hardware_concurrency());
  require_usage(spec.threads > 0, "--threads must be positive");
  spec.artifacts = flags.count("artifacts") > 0;
  spec.profile = flags.count("profile") > 0;
  spec.progress = flags.count("progress") > 0;
  spec.timeseries = flags.count("timeseries") > 0;
#if defined(__unix__) || defined(__APPLE__)
  // The live ticker redraws one line with \r — only sensible on a real
  // terminal; a redirected stderr gets the progress.jsonl stream instead.
  spec.ticker = spec.progress && isatty(fileno(stderr)) != 0;
#endif
  if (flags.count("telemetry-interval-ms")) {
    spec.telemetry_interval_ms = std::stoi(flags.at("telemetry-interval-ms"));
    require_usage(spec.telemetry_interval_ms >= 0, "--telemetry-interval-ms must be >= 0");
  }
  if (flags.count("stall-multiplier")) {
    spec.stall_multiplier = std::stod(flags.at("stall-multiplier"));
    require_usage(spec.stall_multiplier > 0.0, "--stall-multiplier must be positive");
  }
  if (flags.count("stall-floor-ms")) {
    spec.stall_floor_ms = std::stod(flags.at("stall-floor-ms"));
    require_usage(spec.stall_floor_ms >= 0.0, "--stall-floor-ms must be >= 0");
  }

  const campaign::CampaignResult result = campaign::run_campaign(spec);

  if (spec.shard_count > 1) {
    // A shard holds a fraction of the fleet's rows: an aggregate table over
    // them would lie about the campaign, so report the partial manifest and
    // point at `campaign merge` instead.
    std::size_t failed = 0;
    for (const std::size_t i : result.shard_units) {
      if (!result.outcomes[i].ok) ++failed;
    }
    std::cout << "campaign shard " << spec.shard_index << '/' << spec.shard_count << ": "
              << result.shard_units.size() << " of " << result.units.size() << " units";
    if (result.resumed_units > 0) std::cout << " (" << result.resumed_units << " resumed)";
    std::cout << '\n';
    if (failed > 0) {
      std::cout << failed << " run(s) FAILED:\n";
      for (const std::size_t i : result.shard_units) {
        if (!result.outcomes[i].ok) {
          std::cout << "  " << result.outcomes[i].id << ": " << result.outcomes[i].error << '\n';
        }
      }
    }
    std::cout << "wrote " << spec.out_dir
              << "/shard.jsonl (combine the fleet with `campaign merge`)\n";
    return failed > 0 ? kExitRunFailed : kExitOk;
  }

  const campaign::Aggregate aggregate =
      campaign::aggregate_outcomes(spec, result.units, result.outcomes);

  std::cout << "campaign:        " << result.units.size() << " runs (" << spec.apps.size()
            << " apps x " << spec.seeds.size() << " seeds x " << spec.schedulers.size()
            << " schedulers, " << spec.threads << " threads)\n";
  AsciiTable table(
      {"scheduler", "runs", "energy mean", "energy p50", "makespan p50", "miss rate"});
  for (const campaign::SchedulerAggregate& s : aggregate.schedulers) {
    table.add_row({s.scheduler, std::to_string(s.runs), format_double(s.energy.mean, 1),
                   format_double(s.energy.p50, 1), format_double(s.makespan.p50, 1),
                   format_double(s.miss_rate, 3)});
  }
  table.print(std::cout);
  if (aggregate.failed_runs > 0) {
    std::cout << aggregate.failed_runs << " run(s) FAILED:\n";
    for (const campaign::RunOutcome& r : result.outcomes) {
      if (!r.ok) std::cout << "  " << r.id << ": " << r.error << '\n';
    }
  }
  if (result.resumed_units > 0) {
    std::cout << result.resumed_units << " unit(s) resumed from " << spec.resume_from << '\n';
  }
  std::cout << "wrote " << spec.out_dir << "/{manifest.json,aggregate.json,resources.json,"
            << "dashboard.html,shard.jsonl}"
            << (spec.profile ? " + {profile.json,profile_timings.json,profile.folded}" : "")
            << (spec.progress ? " + progress.jsonl" : "")
            << (spec.timeseries ? " + {timeseries.jsonl,timeline.html}" : "")
            << (spec.artifacts ? " + runs/*" : "") << '\n';
  return aggregate.failed_runs > 0 ? kExitRunFailed : kExitOk;
}

int cmd_campaign_merge(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("out") > 0, "campaign merge requires --out DIR");
  require_usage(flags.count("shards") > 0, "campaign merge requires --shards DIR0,DIR1,..");
  campaign::MergeOptions options;
  options.out_dir = flags.at("out");
  options.shard_dirs = split_csv(flags.at("shards"));
  require_usage(!options.shard_dirs.empty(), "campaign merge requires --shards DIR0,DIR1,..");

  campaign::MergeReport report;
  try {
    report = campaign::merge_shards(options);
  } catch (const campaign::ShardMergeError& e) {
    // One machine-readable verdict line: "campaign merge: reason=<slug> ...".
    std::cerr << "campaign merge: " << e.what() << '\n';
    return kExitShardMerge;
  }

  std::cout << "campaign merge:  " << report.shards << " shards -> " << report.units
            << " units";
  if (report.failed_runs > 0) std::cout << " (" << report.failed_runs << " failed)";
  std::cout << '\n';
  if (report.telemetry) {
    std::cout << "fleet telemetry: " << report.stall_events << " stall event"
              << (report.stall_events == 1 ? "" : "s");
    if (!report.stragglers.empty()) {
      std::cout << "; stragglers:";
      for (const std::string& s : report.stragglers) std::cout << ' ' << s;
    }
    std::cout << '\n';
  }
  std::cout << "wrote " << options.out_dir << "/{manifest.json,aggregate.json,resources.json,"
            << "dashboard.html}"
            << (report.profile ? " + {profile.json,profile_timings.json,profile.folded}" : "")
            << (report.telemetry ? " + fleet timeline.html + merged streams" : "")
            << (report.artifacts ? " + runs/*" : "") << '\n';
  return report.failed_runs > 0 ? kExitRunFailed : kExitOk;
}

int cmd_timeseries_summarize(const std::map<std::string, std::string>& flags) {
  require_usage(flags.count("in") > 0, "timeseries summarize requires --in FILE");
  std::ifstream is(flags.at("in"));
  NOCEAS_REQUIRE(is.good(), "cannot open stream file '" << flags.at("in") << '\'');
  const obs::StreamSummary summary = obs::summarize_stream(is);
  obs::print_summary(std::cout, summary);
  if (flags.count("json")) {
    std::ofstream os(flags.at("json"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("json") << '\'');
    obs::write_summary_json(os, summary);
    std::cout << "wrote " << flags.at("json") << '\n';
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // The global --log-level flag is consumed here, before verb dispatch, so
  // every command accepts it in any position.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  try {
    for (int i = 0; i < argc; ++i) {
      if (std::string(argv[i]) == "--log-level") {
        require_usage(i + 1 < argc, "--log-level requires a value (error|warn|info)");
        try {
          log::set_level(log::parse_level(argv[++i]));
        } catch (const Error& e) {
          throw UsageError(e.what());
        }
        continue;
      }
      args.push_back(argv[i]);
    }
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << '\n';
    return kExitBadInvocation;
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      return cmd_gen(parse_flags(argc, argv, 2,
                                 {"category", "index", "msb", "clip", "ctg", "platform"}));
    }
    if (cmd == "info") {
      return cmd_info(parse_flags(argc, argv, 2, {"ctg"}));
    }
    if (cmd == "schedule") {
      return cmd_schedule(parse_flags(argc, argv, 2,
                                      {"ctg", "platform", "scheduler", "gantt", "svg",
                                       "link-heat", "critical-path", "contention", "dot",
                                       "simulate", "dvs", "trace", "metrics", "decisions",
                                       "schedule-out", "profile", "profile-folded",
                                       "timeseries"}));
    }
    if (cmd == "explain") {
      return cmd_explain(parse_flags(argc, argv, 2, {"decisions", "task"}));
    }
    if (cmd == "audit") {
      return cmd_audit(parse_flags(argc, argv, 2,
                                   {"replay", "decisions", "ctg", "platform", "profile",
                                    "profile-folded"}));
    }
    if (cmd == "validate") {
      return cmd_validate(parse_flags(argc, argv, 2,
                                      {"schedule", "ctg", "platform", "deadlines"}));
    }
    if (cmd == "analyze") {
      return cmd_analyze(parse_flags(argc, argv, 2,
                                     {"ctg", "platform", "scheduler", "schedule", "decisions",
                                      "json", "metrics", "svg", "top", "compare", "profile",
                                      "profile-folded"}));
    }
    if (cmd == "campaign") {
      if (argc >= 3 && std::string(argv[2]) == "merge") {
        return cmd_campaign_merge(parse_flags(argc, argv, 3, {"out", "shards"}));
      }
      return cmd_campaign(parse_flags(argc, argv, 2,
                                      {"out", "categories", "indices", "msb", "seeds",
                                       "seed-list", "schedulers", "threads", "artifacts",
                                       "profile", "shard", "resume", "progress",
                                       "timeseries", "telemetry-interval-ms",
                                       "stall-multiplier", "stall-floor-ms"}));
    }
    if (cmd == "timeseries") {
      require_usage(argc >= 3 && std::string(argv[2]) == "summarize",
                    "timeseries supports one subcommand: summarize");
      return cmd_timeseries_summarize(parse_flags(argc, argv, 3, {"in", "json"}));
    }
    if (cmd == "diff") {
      return cmd_diff(parse_flags(argc, argv, 2,
                                  {"ctg", "platform", "scheduler-a", "scheduler-b",
                                   "decisions-a", "decisions-b", "schedule-a", "schedule-b",
                                   "campaign-a", "campaign-b", "json", "top"}));
    }
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << '\n';
    return kExitBadInvocation;
  } catch (const std::exception& e) {
    // Through the log gate (same "error: " prefix) so --log-level governs
    // every diagnostic line the CLI can produce.
    NOCEAS_ERROR(e.what());
    return kExitRunFailed;
  }
  return usage();
}
