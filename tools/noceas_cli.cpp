// noceas command-line driver.
//
// Ships a scheduling problem as two text files (CTG + platform spec) and
// replays it with any scheduler of the library:
//
//   noceas_cli gen       --category 1 --index 0 --ctg g.txt --platform p.txt
//   noceas_cli info      --ctg g.txt
//   noceas_cli schedule  --ctg g.txt --platform p.txt [--scheduler eas]
//                        [--gantt] [--svg out.svg] [--link-heat] [--dot out.dot]
//                        [--simulate] [--dvs] [--trace t.json] [--metrics m.json]
//
// Schedulers: eas (default), eas-base, edf, dls, greedy.
// Unknown flags are rejected with an error (no silent typo swallowing).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/baseline/dls.hpp"
#include "src/baseline/edf.hpp"
#include "src/baseline/greedy_energy.hpp"
#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/ctg/serialize.hpp"
#include "src/dvs/slack_reclaim.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/noc/platform_io.hpp"
#include "src/sim/wormhole_sim.hpp"
#include "src/util/table.hpp"
#include "src/viz/gantt_svg.hpp"

using namespace noceas;

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  noceas_cli gen --category <1|2> --index <0..9> --ctg FILE [--platform FILE]\n"
      "  noceas_cli gen --msb <encoder|decoder|encdec> --clip <akiyo|foreman|toybox>\n"
      "             --ctg FILE [--platform FILE]\n"
      "  noceas_cli info --ctg FILE\n"
      "  noceas_cli schedule --ctg FILE --platform FILE [--scheduler eas|eas-base|edf|dls|greedy]\n"
      "             [--gantt] [--svg FILE] [--link-heat] [--dot FILE] [--simulate] [--dvs]\n"
      "             [--trace FILE] [--metrics FILE]\n"
      "\n"
      "schedule observability flags:\n"
      "  --trace FILE    write a Chrome trace-event JSON of the scheduler run\n"
      "                  (open in ui.perfetto.dev or chrome://tracing)\n"
      "  --metrics FILE  write the metrics registry JSON (probe cache hit rate,\n"
      "                  per-PE busy fraction, per-link utilization, ...)\n"
      "  --link-heat     tint the --svg link lanes by utilization\n";
  return 2;
}

/// Parses `--flag [value]` pairs.  A flag not in `allowed` is a hard error:
/// a typo must never be silently ignored.
std::map<std::string, std::string> parse_flags(int argc, char** argv, int first,
                                               const std::vector<std::string>& allowed) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    NOCEAS_REQUIRE(arg.rfind("--", 0) == 0,
                   "unexpected argument '" << arg << "' (flags start with --)");
    arg = arg.substr(2);
    NOCEAS_REQUIRE(std::find(allowed.begin(), allowed.end(), arg) != allowed.end(),
                   "unknown flag '--" << arg << "' for command '" << argv[1]
                                      << "' (run noceas_cli without arguments for usage)");
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

TaskGraph load_ctg(const std::string& path) {
  std::ifstream is(path);
  NOCEAS_REQUIRE(is.good(), "cannot open CTG file '" << path << '\'');
  return read_ctg(is);
}

Platform load_platform(const std::string& path) {
  std::ifstream is(path);
  NOCEAS_REQUIRE(is.good(), "cannot open platform file '" << path << '\'');
  return read_platform(is);
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  NOCEAS_REQUIRE(flags.count("ctg"), "gen requires --ctg FILE");
  TaskGraph g(1);
  Platform p = make_mesh_platform(1, 1, {"NONE"});
  if (flags.count("msb")) {
    const std::string which = flags.at("msb");
    ClipProfile clip = clip_foreman();
    if (flags.count("clip")) {
      for (const ClipProfile& c : all_clips()) {
        if (c.name == flags.at("clip")) clip = c;
      }
    }
    const bool small = which != "encdec";
    const PeCatalog catalog = small ? msb_catalog_2x2() : msb_catalog_3x3();
    p = small ? msb_platform_2x2() : msb_platform_3x3();
    g = which == "encoder"   ? make_av_encoder(clip, catalog)
        : which == "decoder" ? make_av_decoder(clip, catalog)
                             : make_av_encdec(clip, catalog);
  } else {
    const int category = flags.count("category") ? std::stoi(flags.at("category")) : 1;
    const int index = flags.count("index") ? std::stoi(flags.at("index")) : 0;
    const PeCatalog catalog = make_hetero_catalog(4, 4, 42);
    p = make_platform_for(catalog, 4, 4);
    g = generate_tgff_like(category_params(category, index), catalog);
  }

  {
    std::ofstream os(flags.at("ctg"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("ctg") << '\'');
    write_ctg(os, g);
  }
  std::cout << "wrote " << flags.at("ctg") << " (" << g.num_tasks() << " tasks, "
            << g.num_edges() << " edges)\n";
  if (flags.count("platform")) {
    std::ofstream os(flags.at("platform"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("platform") << '\'');
    write_platform(os, p);
    std::cout << "wrote " << flags.at("platform") << " (" << p.num_pes() << " PEs)\n";
  }
  return 0;
}

int cmd_info(const std::map<std::string, std::string>& flags) {
  NOCEAS_REQUIRE(flags.count("ctg"), "info requires --ctg FILE");
  const TaskGraph g = load_ctg(flags.at("ctg"));
  std::size_t with_deadline = 0, control_edges = 0;
  Volume total_volume = 0;
  for (TaskId t : g.all_tasks())
    if (g.task(t).has_deadline()) ++with_deadline;
  for (EdgeId e : g.all_edges()) {
    if (g.edge(e).is_control_only())
      ++control_edges;
    else
      total_volume += g.edge(e).volume;
  }
  std::cout << "tasks:            " << g.num_tasks() << '\n'
            << "edges:            " << g.num_edges() << " (" << control_edges << " control)\n"
            << "PEs targeted:     " << g.num_pes() << '\n'
            << "with deadline:    " << with_deadline << '\n'
            << "sources/sinks:    " << g.sources().size() << '/' << g.sinks().size() << '\n'
            << "total volume:     " << total_volume << " bits\n";
  return 0;
}

int cmd_schedule(const std::map<std::string, std::string>& flags) {
  NOCEAS_REQUIRE(flags.count("ctg") && flags.count("platform"),
                 "schedule requires --ctg FILE and --platform FILE");
  const TaskGraph g = load_ctg(flags.at("ctg"));
  const Platform p = load_platform(flags.at("platform"));
  const std::string which = flags.count("scheduler") ? flags.at("scheduler") : "eas";

  // Observability sinks, attached only when requested.
  obs::Tracer tracer;
  obs::Registry registry;
  obs::Tracer* const tr = flags.count("trace") ? &tracer : nullptr;
  obs::Registry* const metrics = flags.count("metrics") ? &registry : nullptr;

  Schedule s;
  EnergyBreakdown energy;
  MissReport misses;
  double seconds = 0.0;
  if (which == "eas" || which == "eas-base") {
    EasOptions options;
    options.repair = which == "eas";
    options.tracer = tr;
    options.metrics = metrics;
    const EasResult r = schedule_eas(g, p, options);
    s = r.schedule;
    energy = r.energy;
    misses = r.misses;
    seconds = r.seconds;
  } else {
    const BaselineObs baseline_obs{tr, metrics};
    BaselineResult r;
    if (which == "edf")
      r = schedule_edf(g, p, baseline_obs);
    else if (which == "dls")
      r = schedule_dls(g, p, baseline_obs);
    else if (which == "greedy")
      r = schedule_greedy_energy(g, p, baseline_obs);
    else
      NOCEAS_REQUIRE(false, "unknown scheduler '" << which << '\'');
    s = r.schedule;
    energy = r.energy;
    misses = r.misses;
    seconds = r.seconds;
  }

  const ValidationReport vr = validate_schedule(g, p, s, {.check_deadlines = false});
  NOCEAS_REQUIRE(vr.ok(), "scheduler produced an invalid schedule:\n" << vr.to_string());

  std::cout << "scheduler:       " << which << '\n'
            << "energy:          " << format_double(energy.total(), 1) << " nJ (comp "
            << format_double(energy.computation, 1) << ", comm "
            << format_double(energy.communication, 1) << ")\n"
            << "makespan:        " << makespan(s) << '\n'
            << "deadline misses: " << misses.miss_count << " (tardiness "
            << misses.total_tardiness << ")\n"
            << "avg hops/packet: " << format_double(average_hops_per_packet(g, p, s), 2) << '\n'
            << "runtime:         " << format_double(seconds, 3) << " s\n";

  if (flags.count("gantt")) print_gantt(std::cout, g, p, s);
  if (flags.count("svg")) {
    std::ofstream os(flags.at("svg"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("svg") << '\'');
    GanttSvgOptions svg_options;
    svg_options.show_link_heat = flags.count("link-heat") > 0;
    svg_options.title = which + " schedule";
    write_gantt_svg(os, g, p, s, svg_options);
    std::cout << "wrote " << flags.at("svg") << '\n';
  }
  if (flags.count("dot")) {
    std::ofstream os(flags.at("dot"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("dot") << '\'');
    g.to_dot(os);
    std::cout << "wrote " << flags.at("dot") << '\n';
  }
  if (flags.count("simulate")) {
    SimOptions sim_options;
    sim_options.tracer = tr;
    sim_options.metrics = metrics;
    const SimReport sim = simulate_schedule(g, p, s, sim_options);
    std::cout << "simulated:       makespan " << sim.makespan << ", misses "
              << sim.misses.miss_count << ", avg packet latency "
              << format_double(sim.avg_packet_latency, 1) << " cycles\n";
  }
  if (flags.count("dvs")) {
    DvsOptions dvs_options;
    dvs_options.tracer = tr;
    dvs_options.metrics = metrics;
    const DvsResult dvs = reclaim_slack(g, p, s, dvs_options);
    std::cout << "DVS reclaims:    " << format_double(dvs.saved(), 1) << " nJ ("
              << dvs.slowed_tasks << " tasks slowed)\n";
  }
  if (tr != nullptr) {
    std::ofstream os(flags.at("trace"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("trace") << '\'');
    tracer.write_chrome_json(os);
    std::cout << "wrote " << flags.at("trace") << " (" << tracer.size() << " events)\n";
  }
  if (metrics != nullptr) {
    std::ofstream os(flags.at("metrics"));
    NOCEAS_REQUIRE(os.good(), "cannot write '" << flags.at("metrics") << '\'');
    registry.write_json(os);
    std::cout << "wrote " << flags.at("metrics") << '\n';
  }
  return misses.all_met() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      return cmd_gen(parse_flags(argc, argv, 2,
                                 {"category", "index", "msb", "clip", "ctg", "platform"}));
    }
    if (cmd == "info") {
      return cmd_info(parse_flags(argc, argv, 2, {"ctg"}));
    }
    if (cmd == "schedule") {
      return cmd_schedule(parse_flags(argc, argv, 2,
                                      {"ctg", "platform", "scheduler", "gantt", "svg",
                                       "link-heat", "dot", "simulate", "dvs", "trace",
                                       "metrics"}));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
