#!/usr/bin/env python3
"""Render the perf trajectory (BENCH_runtime_scaling.json) as an HTML page.

The trajectory file accumulates one entry per `tools/bench_compare.py
record` invocation: revision, environment fingerprint, min-of-repetitions
timing per benchmark, and (since the profiler landed) the per-span self
times of one profiled run.  This tool turns it into a single
self-contained HTML dashboard — no external assets, stdlib only:

  * one row per benchmark with an inline-SVG sparkline across every
    recorded revision; a step that grew beyond the tolerance is drawn as a
    highlighted regression point,
  * a revision axis covering every entry (rev, fingerprint, benchmark
    count), so nothing recorded is silently dropped,
  * a "where the time goes" section from the newest entry with span
    self-times: top spans per benchmark, with the step delta against the
    previous entry when it also carried profile data.

Colors follow the repo's SVG palette (src/viz/svg_common.cpp), so the
dashboard matches the Gantt/campaign artifacts.

Usage:
  tools/perf_report.py [--trajectory BENCH_runtime_scaling.json]
                       [--out perf_report.html] [--tolerance 0.35]
  tools/perf_report.py selfcheck

selfcheck renders a synthetic trajectory plus the repo's real one (when
present) and asserts the coverage invariants; ctest runs it as
perf_report_selfcheck.
"""

import argparse
import html
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_SCHEMA = "noceas.bench_trajectory.v1"

# The categorical palette of src/viz/svg_common.cpp, in the same order.
PALETTE = ["#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
           "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"]
REGRESS_COLOR = "#e15759"
IMPROVE_COLOR = "#59a14f"

CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 68em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; width: 100%; font-size: 0.85em; }
th, td { padding: 0.3em 0.6em; text-align: left; border-bottom: 1px solid #e4e4e4; }
th { color: #666; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.chip { display: inline-block; width: 0.7em; height: 0.7em; border-radius: 50%;
        margin-right: 0.45em; vertical-align: baseline; }
.regress { color: #e15759; font-weight: 600; }
.improve { color: #59a14f; }
.muted { color: #888; }
code { background: #f4f4f4; padding: 0.1em 0.3em; border-radius: 3px; }
"""


def load_trajectory(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        sys.exit(f"error: unexpected trajectory schema {doc.get('schema')!r}")
    return doc


def series_of(entries):
    """benchmark name -> [ms or None per entry], covering every entry."""
    names = sorted({n for e in entries for n in e.get("bench_ms", {})})
    return {n: [e.get("bench_ms", {}).get(n) for e in entries] for n in names}


def step_verdicts(values, tolerance):
    """Per entry: 'regress' / 'improve' / None vs the previous present value."""
    verdicts = [None] * len(values)
    prev = None
    for i, v in enumerate(values):
        if v is None:
            continue
        if prev is not None and prev > 0:
            if v > prev * (1.0 + tolerance):
                verdicts[i] = "regress"
            elif v < prev * (1.0 - tolerance):
                verdicts[i] = "improve"
        prev = v
    return verdicts


def sparkline(values, verdicts, color):
    """Inline SVG: one x slot per entry, y normalized to the series range."""
    width, height, pad = 16 * max(1, len(values) - 1) + 12, 30, 6
    present = [v for v in values if v is not None]
    lo, hi = min(present), max(present)
    span = (hi - lo) or 1.0

    def xy(i, v):
        x = pad + (16 * i if len(values) > 1 else 0)
        y = height - pad - (v - lo) / span * (height - 2 * pad)
        return x, y

    points = [(i, v) for i, v in enumerate(values) if v is not None]
    polyline = " ".join(f"{xy(i, v)[0]:.1f},{xy(i, v)[1]:.1f}" for i, v in points)
    dots = []
    for i, v in points:
        x, y = xy(i, v)
        if verdicts[i] == "regress":
            dots.append(f'<circle class="regress-dot" cx="{x:.1f}" cy="{y:.1f}" r="3.4" '
                        f'fill="{REGRESS_COLOR}"><title>regression: {v:g} ms</title></circle>')
        elif verdicts[i] == "improve":
            dots.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.6" fill="{IMPROVE_COLOR}">'
                        f'<title>improvement: {v:g} ms</title></circle>')
        else:
            dots.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="1.8" fill="{color}"/>')
    return (f'<svg width="{width}" height="{height}" role="img">'
            f'<polyline points="{polyline}" fill="none" stroke="{color}" '
            f'stroke-width="1.2"/>{"".join(dots)}</svg>')


def fmt_ms(v):
    return "—" if v is None else f"{v:,.2f}"


def render(doc, tolerance):
    """Pure trajectory -> HTML string (what selfcheck exercises)."""
    entries = doc.get("entries", [])
    series = series_of(entries)
    families = sorted({n.split("/")[0] for n in series})
    color_of = {f: PALETTE[i % len(PALETTE)] for i, f in enumerate(families)}

    out = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
           "<title>noceas perf trajectory</title>",
           f"<style>{CSS}</style></head><body>",
           "<h1>Perf trajectory — <code>bench/runtime_scaling</code></h1>",
           f"<p class='muted'>{len(entries)} recorded revision(s), "
           f"{len(series)} benchmark(s), regression tolerance "
           f"{tolerance:.0%} per step. Rendered from "
           f"<code>BENCH_runtime_scaling.json</code> "
           "(<code>tools/bench_compare.py record</code> appends entries).</p>"]

    # Revision axis: every entry, oldest first — full coverage by design.
    out.append("<h2>Revisions</h2><table><tr><th>#</th><th>rev</th>"
               "<th>fingerprint</th><th class='num'>benchmarks</th>"
               "<th class='num'>spans profiled</th><th class='num'>regressions</th></tr>")
    all_verdicts = {n: step_verdicts(vs, tolerance) for n, vs in series.items()}
    for i, e in enumerate(entries):
        n_reg = sum(1 for n in series if all_verdicts[n][i] == "regress")
        reg = f"<td class='num regress'>{n_reg}</td>" if n_reg else "<td class='num'>0</td>"
        spans = sum(len(v) for v in e.get("profile_self_ms", {}).values())
        out.append(f"<tr><td>{i + 1}</td><td><code>{html.escape(str(e.get('rev', '?')))}"
                   f"</code></td><td class='muted'><code>"
                   f"{html.escape(str(e.get('fingerprint', '?')))}</code></td>"
                   f"<td class='num'>{len(e.get('bench_ms', {}))}</td>"
                   f"<td class='num'>{spans or '—'}</td>{reg}</tr>")
    out.append("</table>")

    # One sparkline row per benchmark.
    out.append("<h2>Benchmarks</h2><table><tr><th></th><th>benchmark</th>"
               "<th>trend</th><th class='num'>first ms</th><th class='num'>latest ms</th>"
               "<th class='num'>last step</th><th>verdict</th></tr>")
    for name, values in series.items():
        verdicts = all_verdicts[name]
        color = color_of[name.split("/")[0]]
        present = [(i, v) for i, v in enumerate(values) if v is not None]
        first, latest = present[0][1], present[-1][1]
        prev = present[-2][1] if len(present) > 1 else None
        step = (latest / prev - 1.0) if prev else None
        verdict = verdicts[present[-1][0]]
        step_cell = "—" if step is None else f"{step:+.1%}"
        verdict_cell = {"regress": "<span class='regress'>REGRESSED</span>",
                        "improve": "<span class='improve'>improved</span>",
                        None: "<span class='muted'>steady</span>"}[verdict]
        out.append(f"<tr><td><span class='chip' style='background:{color}'></span></td>"
                   f"<td><code>{html.escape(name)}</code></td>"
                   f"<td>{sparkline(values, verdicts, color)}</td>"
                   f"<td class='num'>{fmt_ms(first)}</td><td class='num'>{fmt_ms(latest)}</td>"
                   f"<td class='num'>{step_cell}</td><td>{verdict_cell}</td></tr>")
    out.append("</table>")

    # Span self-times of the newest profiled entry, with step deltas.
    profiled = [e for e in entries if e.get("profile_self_ms")]
    if profiled:
        newest = profiled[-1]
        before = profiled[-2] if len(profiled) > 1 else None
        out.append(f"<h2>Where the time goes — rev "
                   f"<code>{html.escape(str(newest.get('rev', '?')))}</code></h2>"
                   "<p class='muted'>Exclusive self time per call path, one profiled "
                   "run per benchmark (outside the timed loop); delta vs the previous "
                   "profiled entry. The span that grew the most is what "
                   "<code>bench_compare.py check</code> names as a regression's "
                   "suspect.</p>")
        for bench_name in sorted(newest["profile_self_ms"]):
            spans = newest["profile_self_ms"][bench_name]
            prev_spans = (before or {}).get("profile_self_ms", {}).get(bench_name, {})
            out.append(f"<h3><code>{html.escape(bench_name)}</code></h3>"
                       "<table><tr><th>call path</th><th class='num'>self ms</th>"
                       "<th class='num'>Δ ms</th></tr>")
            top = sorted(spans.items(), key=lambda kv: -kv[1])[:10]
            for path, ms in top:
                delta = ms - prev_spans[path] if path in prev_spans else None
                if delta is None:
                    delta_cell = "<td class='num muted'>—</td>"
                else:
                    cls = " regress" if delta > 0.05 * max(ms, 1e-9) and delta > 0 else ""
                    delta_cell = f"<td class='num{cls}'>{delta:+,.2f}</td>"
                out.append(f"<tr><td><code>{html.escape(path)}</code></td>"
                           f"<td class='num'>{ms:,.2f}</td>{delta_cell}</tr>")
            if len(spans) > len(top):
                out.append(f"<tr><td class='muted' colspan='3'>… {len(spans) - len(top)} "
                           "more span(s)</td></tr>")
            out.append("</table>")

    if not entries:
        out.append("<p class='muted'>No entries yet — run "
                   "<code>tools/bench_compare.py record</code>.</p>")
    out.append("</body></html>\n")
    return "".join(out)


def selfcheck():
    """Coverage invariants on a synthetic trajectory + the repo's real one."""
    synth = {
        "schema": TRAJECTORY_SCHEMA,
        "entries": [
            {"rev": "aaa1111", "fingerprint": "fp0",
             "bench_ms": {"BM_Steady/0": 10.0, "BM_Hot/3": 100.0}},
            {"rev": "bbb2222", "fingerprint": "fp0",
             "bench_ms": {"BM_Steady/0": 10.3, "BM_Hot/3": 95.0, "BM_New/1": 2.0},
             "profile_self_ms": {"BM_Hot/3": {"eas.schedule": 5.0,
                                              "eas.schedule;probe.batch": 80.0}}},
            {"rev": "ccc3333", "fingerprint": "fp0",
             "bench_ms": {"BM_Steady/0": 9.9, "BM_Hot/3": 170.0, "BM_New/1": 1.1},
             "profile_self_ms": {"BM_Hot/3": {"eas.schedule": 5.5,
                                              "eas.schedule;probe.batch": 151.0}}},
        ],
    }
    page = render(synth, 0.35)
    for e in synth["entries"]:
        assert str(e["rev"]) in page, f"entry {e['rev']} not covered"
    for name in ("BM_Steady/0", "BM_Hot/3", "BM_New/1"):
        assert name in page, f"benchmark {name} missing"
    assert "regress-dot" in page, "the 170ms step must render a regression point"
    assert "REGRESSED" in page
    assert "eas.schedule;probe.batch" in page, "span table missing"
    assert "+71.00" in page, "span delta (151-80) missing"
    assert page.count("</html>") == 1 and page.startswith("<!DOCTYPE html>")

    # A benchmark present in only some entries must still get a full row.
    verdicts = step_verdicts([None, 2.0, 1.1], 0.35)
    assert verdicts == [None, None, "improve"], verdicts

    empty = render({"schema": TRAJECTORY_SCHEMA, "entries": []}, 0.35)
    assert "</html>" in empty and "No entries yet" in empty

    # A single-revision trajectory (the very first `bench_compare.py record`)
    # must render a valid page: one-point sparklines, no steps to judge, every
    # benchmark a steady row with first == latest and no step percentage.
    single = render({"schema": TRAJECTORY_SCHEMA,
                     "entries": [synth["entries"][0]]}, 0.35)
    assert single.count("</html>") == 1 and single.startswith("<!DOCTYPE html>")
    assert "aaa1111" in single
    for name in ("BM_Steady/0", "BM_Hot/3"):
        assert name in single, f"benchmark {name} missing from single-rev page"
    assert "REGRESSED" not in single and "regress-dot" not in single
    assert "steady" in single and single.count("<svg") == 2

    real_path = os.path.join(REPO, "BENCH_runtime_scaling.json")
    if os.path.exists(real_path):
        doc = load_trajectory(real_path)
        page = render(doc, 0.35)
        for e in doc.get("entries", []):
            assert str(e.get("rev")) in page, f"real entry {e.get('rev')} not covered"
        for name in {n for e in doc.get("entries", []) for n in e.get("bench_ms", {})}:
            assert name in page, f"real benchmark {name} not covered"
        print(f"perf_report selfcheck OK ({len(doc.get('entries', []))} real entries covered)")
    else:
        print("perf_report selfcheck OK (no real trajectory present)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("mode", nargs="?", choices=["render", "selfcheck"], default="render")
    ap.add_argument("--trajectory", default=os.path.join(REPO, "BENCH_runtime_scaling.json"))
    ap.add_argument("--out", default=os.path.join(REPO, "perf_report.html"))
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="per-step relative growth flagged as a regression (default 35%%)")
    args = ap.parse_args()

    if args.mode == "selfcheck":
        return selfcheck()

    doc = load_trajectory(args.trajectory)
    page = render(doc, args.tolerance)
    with open(args.out, "w") as f:
        f.write(page)
    n = len(doc.get("entries", []))
    print(f"wrote {os.path.relpath(args.out, os.getcwd())} ({n} entries, "
          f"{len(series_of(doc.get('entries', [])))} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
