// Random benchmark explorer: generate one TGFF-like benchmark (as in the
// paper's Sec. 6.1), schedule it with every algorithm in the library,
// validate the schedules, and cross-check the EAS schedule on the
// flit-level wormhole simulator.
//
// Usage: random_sweep [category (1|2)] [index (0..9)] [--dot FILE] [--gantt]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "src/baseline/dls.hpp"
#include "src/baseline/edf.hpp"
#include "src/baseline/greedy_energy.hpp"
#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/gen/tgff.hpp"
#include "src/sim/wormhole_sim.hpp"
#include "src/util/table.hpp"

using namespace noceas;

int main(int argc, char** argv) {
  int category = 1;
  int index = 0;
  std::string dot_file;
  bool gantt = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot" && i + 1 < argc) {
      dot_file = argv[++i];
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (category == 1 && index == 0 && arg.find_first_not_of("0123456789") == std::string::npos) {
      if (i == 1)
        category = std::atoi(arg.c_str());
      else
        index = std::atoi(arg.c_str());
    } else {
      index = std::atoi(arg.c_str());
    }
  }

  // The paper's random experiments target a 4x4 heterogeneous NoC.
  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);
  const TgffParams params = category_params(category, index);
  const TaskGraph ctg = generate_tgff_like(params, catalog);

  std::cout << "benchmark: category " << category << " index " << index << " — "
            << ctg.num_tasks() << " tasks, " << ctg.num_edges() << " transactions, "
            << platform.num_pes() << " PEs\n\n";

  if (!dot_file.empty()) {
    std::ofstream os(dot_file);
    ctg.to_dot(os);
    std::cout << "wrote " << dot_file << '\n';
  }

  EasOptions base_opts;
  base_opts.repair = false;
  const EasResult eas_base = schedule_eas(ctg, platform, base_opts);
  const EasResult eas = schedule_eas(ctg, platform);
  const BaselineResult edf = schedule_edf(ctg, platform);
  const BaselineResult dls = schedule_dls(ctg, platform);
  const BaselineResult greedy = schedule_greedy_energy(ctg, platform);

  AsciiTable table({"scheduler", "energy (nJ)", "vs EAS", "makespan", "misses", "tardiness",
                    "avg hops", "time (s)"});
  auto add = [&](const char* name, const Schedule& s, const EnergyBreakdown& e,
                 const MissReport& m, double secs) {
    const ValidationReport vr = validate_schedule(ctg, platform, s, {.check_deadlines = false});
    if (!vr.ok()) {
      std::cerr << name << " INVALID:\n" << vr.to_string();
      std::exit(1);
    }
    table.add_row({name, format_double(e.total(), 0),
                   format_percent(e.total() / eas.energy.total() - 1.0),
                   std::to_string(makespan(s)), std::to_string(m.miss_count),
                   std::to_string(m.total_tardiness),
                   format_double(average_hops_per_packet(ctg, platform, s), 2),
                   format_double(secs, 2)});
  };
  add("EAS-base", eas_base.schedule, eas_base.energy, eas_base.misses, eas_base.seconds);
  add("EAS", eas.schedule, eas.energy, eas.misses, eas.seconds);
  add("EDF", edf.schedule, edf.energy, edf.misses, edf.seconds);
  add("DLS", dls.schedule, dls.energy, dls.misses, dls.seconds);
  add("min-energy", greedy.schedule, greedy.energy, greedy.misses, greedy.seconds);
  table.print(std::cout);

  if (gantt) print_gantt(std::cout, ctg, platform, eas.schedule);

  // Cross-check EAS on the wormhole network.
  const SimReport sim = simulate_schedule(ctg, platform, eas.schedule);
  std::cout << "\nwormhole simulation of the EAS schedule:\n"
            << "  completed=" << (sim.completed ? "yes" : "no") << " makespan=" << sim.makespan
            << " (static " << makespan(eas.schedule) << ")\n"
            << "  packets=" << sim.packets << " avg latency=" << format_double(sim.avg_packet_latency, 1)
            << " cycles, max arrival lag vs tables=" << sim.max_arrival_lag << " cycles\n"
            << "  simulated deadline misses=" << sim.misses.miss_count << '\n';
  return 0;
}
