// Interactive energy/performance trade-off explorer (the Fig. 7 experiment
// as a tool): sweeps the unified performance ratio over a user-chosen range
// on a chosen MSB system and prints the EAS vs EDF energy series as a table
// and CSV.
//
// Usage: tradeoff_explorer [encoder|decoder|encdec] [akiyo|foreman|toybox]
//                          [--from R] [--to R] [--step R]
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/baseline/edf.hpp"
#include "src/core/eas.hpp"
#include "src/msb/msb.hpp"
#include "src/util/table.hpp"

using namespace noceas;

int main(int argc, char** argv) {
  std::string system = "encdec";
  std::string clip_name = "foreman";
  double from = 1.0, to = 2.6, step = 0.2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "encoder" || arg == "decoder" || arg == "encdec") system = arg;
    else if (arg == "akiyo" || arg == "foreman" || arg == "toybox") clip_name = arg;
    else if (arg == "--from" && i + 1 < argc) from = std::atof(argv[++i]);
    else if (arg == "--to" && i + 1 < argc) to = std::atof(argv[++i]);
    else if (arg == "--step" && i + 1 < argc) step = std::atof(argv[++i]);
    else {
      std::cerr << "usage: tradeoff_explorer [encoder|decoder|encdec] "
                   "[akiyo|foreman|toybox] [--from R] [--to R] [--step R]\n";
      return 2;
    }
  }
  if (from <= 0 || to < from || step <= 0) {
    std::cerr << "invalid sweep range\n";
    return 2;
  }

  ClipProfile clip = clip_foreman();
  for (const ClipProfile& c : all_clips()) {
    if (c.name == clip_name) clip = c;
  }
  const bool small = system != "encdec";
  const PeCatalog catalog = small ? msb_catalog_2x2() : msb_catalog_3x3();
  const Platform platform = small ? msb_platform_2x2() : msb_platform_3x3();

  std::cout << "sweeping " << system << '/' << clip.name << " for ratio in [" << from << ", "
            << to << "] step " << step << "\n\n";

  AsciiTable table({"ratio", "EAS energy (nJ)", "EAS misses", "EDF energy (nJ)", "EDF misses",
                    "EAS/EDF"});
  for (double ratio = from; ratio <= to + 1e-9; ratio += step) {
    const TaskGraph ctg = system == "encoder"   ? make_av_encoder(clip, catalog, ratio)
                          : system == "decoder" ? make_av_decoder(clip, catalog, ratio)
                                                : make_av_encdec(clip, catalog, ratio);
    const EasResult eas = schedule_eas(ctg, platform);
    const BaselineResult edf = schedule_edf(ctg, platform);
    table.add_row({format_double(ratio, 2), format_double(eas.energy.total(), 1),
                   std::to_string(eas.misses.miss_count), format_double(edf.energy.total(), 1),
                   std::to_string(edf.misses.miss_count),
                   format_percent(eas.energy.total() / edf.energy.total())});
  }
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.print_csv(std::cout);
  return 0;
}
