// Pipelined multi-frame scheduling demo: unroll K frames of the A/V
// encoder with a chosen frame rate, schedule the stream with EAS, apply the
// DVS slack-reclamation post-pass, and emit an SVG Gantt chart of the
// pipelined schedule.
//
// Usage: pipeline_demo [frames (default 3)] [fps (default 40)]
//                      [--svg FILE] [--clip akiyo|foreman|toybox]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/ctg/unroll.hpp"
#include "src/dvs/slack_reclaim.hpp"
#include "src/msb/msb.hpp"
#include "src/util/table.hpp"
#include "src/viz/gantt_svg.hpp"

using namespace noceas;

int main(int argc, char** argv) {
  int frames = 3;
  double fps = 40.0;
  std::string svg_file;
  std::string clip_name = "foreman";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--svg" && i + 1 < argc) {
      svg_file = argv[++i];
    } else if (arg == "--clip" && i + 1 < argc) {
      clip_name = argv[++i];
    } else if (positional == 0) {
      frames = std::atoi(arg.c_str());
      ++positional;
    } else {
      fps = std::atof(arg.c_str());
      ++positional;
    }
  }
  if (frames < 1 || fps <= 0) {
    std::cerr << "usage: pipeline_demo [frames] [fps] [--svg FILE] [--clip NAME]\n";
    return 2;
  }

  ClipProfile clip = clip_foreman();
  for (const ClipProfile& c : all_clips()) {
    if (c.name == clip_name) clip = c;
  }

  const PeCatalog catalog = msb_catalog_2x2();
  const Platform platform = msb_platform_2x2();
  const Time period = static_cast<Time>(1e6 / fps);
  const double ratio = static_cast<double>(kEncoderDeadline) / static_cast<double>(period);
  const TaskGraph frame = make_av_encoder(clip, catalog, ratio);

  UnrollOptions options;
  options.iterations = frames;
  options.period = period;
  options.cross_edges = encoder_cross_edges();
  const TaskGraph stream = unroll_periodic(frame, options);

  std::cout << "stream: " << frames << " frames of " << clip.name << " at "
            << format_double(fps, 1) << " fps (period " << period << " us) — "
            << stream.num_tasks() << " tasks, " << stream.num_edges() << " transactions\n";

  const EasResult eas = schedule_eas(stream, platform);
  const ValidationReport vr = validate_schedule(stream, platform, eas.schedule);
  if (!vr.ok()) {
    std::cerr << "schedule INVALID:\n" << vr.to_string();
    return 1;
  }

  std::cout << "EAS: " << format_double(eas.energy.total(), 1) << " nJ total ("
            << format_double(eas.energy.total() / frames, 1) << " nJ/frame), makespan "
            << makespan(eas.schedule) << " us, misses " << eas.misses.miss_count << '\n';

  // Frame overlap: how much of frame k+1 starts before frame k finishes?
  for (int k = 0; k + 1 < frames; ++k) {
    Time k_finish = 0, k1_start = std::numeric_limits<Time>::max();
    for (TaskId t : frame.all_tasks()) {
      k_finish = std::max(k_finish, eas.schedule.at(unrolled_task(frame, k, t)).finish);
      k1_start = std::min(k1_start, eas.schedule.at(unrolled_task(frame, k + 1, t)).start);
    }
    std::cout << "  frames " << k << '/' << k + 1 << " overlap: "
              << std::max<Time>(0, k_finish - k1_start) << " us\n";
  }

  const DvsResult dvs = reclaim_slack(stream, platform, eas.schedule);
  std::cout << "DVS post-pass reclaims " << format_double(dvs.saved(), 1) << " nJ ("
            << dvs.slowed_tasks << " of " << stream.num_tasks() << " tasks slowed)\n";

  if (!svg_file.empty()) {
    std::ofstream os(svg_file);
    GanttSvgOptions gopt;
    gopt.title = "pipelined A/V encoder, " + std::to_string(frames) + " frames @ " +
                 format_double(fps, 0) + " fps";
    write_gantt_svg(os, stream, platform, eas.schedule, gopt);
    std::cout << "wrote " << svg_file << '\n';
  }
  return 0;
}
