// Quickstart: schedule a small hand-built task graph on a heterogeneous
// 2x2 NoC with EAS and compare against the EDF baseline.
//
// Demonstrates the core public API end to end:
//   1. describe the platform (mesh, routing, energy model),
//   2. describe the application as a Communication Task Graph,
//   3. run the Energy-Aware Scheduler (and a baseline),
//   4. inspect/validate the resulting schedule.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "src/baseline/edf.hpp"
#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/noc/platform.hpp"
#include "src/util/table.hpp"

using namespace noceas;

int main() {
  // ---- 1. Platform: 2x2 mesh, one PE of each flavour --------------------
  // Tile order (row-major): (0,0)=HPCPU (0,1)=DSP (1,0)=FPGA (1,1)=ARM.
  Platform platform = make_mesh_platform(
      /*rows=*/2, /*cols=*/2, {"HPCPU", "DSP", "FPGA", "ARM"}, /*link_bandwidth=*/64.0);

  // ---- 2. Application: a 6-task diamond like the paper's Fig. 1 ---------
  // Per-PE execution times/energies, index-aligned with the tiles above.
  // The HPCPU is fast but energy-hungry; the ARM is slow and frugal; DSP
  // and FPGA each excel at "their" tasks.
  TaskGraph ctg(platform.num_pes());
  const TaskId t0 = ctg.add_task("capture", {120, 260, 240, 300}, {420.0, 290.0, 190.0, 120.0});
  const TaskId t1 = ctg.add_task("split", {80, 160, 150, 200}, {280.0, 180.0, 120.0, 80.0});
  const TaskId t2 = ctg.add_task("filter_a", {200, 90, 140, 420}, {700.0, 100.0, 115.0, 170.0});
  const TaskId t3 = ctg.add_task("filter_b", {210, 100, 80, 430}, {730.0, 110.0, 65.0, 175.0});
  const TaskId t4 = ctg.add_task("merge", {90, 170, 160, 210}, {315.0, 190.0, 130.0, 85.0});
  const TaskId t5 = ctg.add_task("emit", {60, 120, 110, 150}, {210.0, 130.0, 90.0, 60.0},
                                 /*deadline=*/1500);
  ctg.add_edge(t0, t1, /*volume=*/4096);
  ctg.add_edge(t1, t2, 8192);
  ctg.add_edge(t1, t3, 8192);
  ctg.add_edge(t2, t4, 4096);
  ctg.add_edge(t3, t4, 4096);
  ctg.add_edge(t4, t5, 2048);
  ctg.validate();

  // ---- 3. Schedule -------------------------------------------------------
  const EasResult eas = schedule_eas(ctg, platform);
  const BaselineResult edf = schedule_edf(ctg, platform);

  // ---- 4. Inspect ----------------------------------------------------------
  std::cout << "Budgeted deadlines (slack shared by weight W = VAR_e*VAR_r):\n";
  for (TaskId t : ctg.all_tasks()) {
    std::cout << "  " << ctg.task(t).name << ": BD=";
    if (eas.budget.has_budget(t))
      std::cout << eas.budget.budgeted_deadline[t.index()];
    else
      std::cout << "-";
    std::cout << "  W=" << format_double(eas.budget.weight[t.index()], 1) << '\n';
  }
  std::cout << '\n';
  print_gantt(std::cout, ctg, platform, eas.schedule);

  const ValidationReport vr = validate_schedule(ctg, platform, eas.schedule);
  std::cout << "\nvalidation: " << (vr.ok() ? "OK" : vr.to_string()) << '\n';

  AsciiTable table({"scheduler", "energy (nJ)", "comp (nJ)", "comm (nJ)", "makespan",
                    "deadline misses"});
  auto row = [&](const char* name, const EnergyBreakdown& e, const Schedule& s,
                 const MissReport& m) {
    table.add_row({name, format_double(e.total(), 1), format_double(e.computation, 1),
                   format_double(e.communication, 1), std::to_string(makespan(s)),
                   std::to_string(m.miss_count)});
  };
  row("EAS", eas.energy, eas.schedule, eas.misses);
  row("EDF", edf.energy, edf.schedule, edf.misses);
  std::cout << '\n';
  table.print(std::cout);

  const double savings = 1.0 - eas.energy.total() / edf.energy.total();
  std::cout << "\nEAS saves " << format_percent(savings) << " energy vs EDF on this graph.\n";
  return vr.ok() && eas.misses.all_met() ? 0 : 1;
}
