// Multimedia demo: schedule the paper's A/V encoder, decoder or integrated
// system for a chosen clip, print the schedule and energy breakdown, and
// execute it on the flit-level wormhole simulator.
//
// Usage: av_codec_demo [encoder|decoder|encdec] [akiyo|foreman|toybox]
//                      [--edf] [--gantt] [--dot FILE]
#include <fstream>
#include <iostream>
#include <string>

#include "src/baseline/edf.hpp"
#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/msb/msb.hpp"
#include "src/sim/wormhole_sim.hpp"
#include "src/util/table.hpp"

using namespace noceas;

int main(int argc, char** argv) {
  std::string system = "encdec";
  std::string clip_name = "foreman";
  bool show_edf = false;
  bool gantt = false;
  std::string dot_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "encoder" || arg == "decoder" || arg == "encdec") system = arg;
    else if (arg == "akiyo" || arg == "foreman" || arg == "toybox") clip_name = arg;
    else if (arg == "--edf") show_edf = true;
    else if (arg == "--gantt") gantt = true;
    else if (arg == "--dot" && i + 1 < argc) dot_file = argv[++i];
    else {
      std::cerr << "usage: av_codec_demo [encoder|decoder|encdec] "
                   "[akiyo|foreman|toybox] [--edf] [--gantt] [--dot FILE]\n";
      return 2;
    }
  }

  ClipProfile clip = clip_foreman();
  for (const ClipProfile& c : all_clips()) {
    if (c.name == clip_name) clip = c;
  }

  const bool small = system != "encdec";
  const PeCatalog catalog = small ? msb_catalog_2x2() : msb_catalog_3x3();
  const Platform platform = small ? msb_platform_2x2() : msb_platform_3x3();
  const TaskGraph ctg = system == "encoder"   ? make_av_encoder(clip, catalog)
                        : system == "decoder" ? make_av_decoder(clip, catalog)
                                              : make_av_encdec(clip, catalog);

  std::cout << "system: " << system << " (" << ctg.num_tasks() << " tasks, " << ctg.num_edges()
            << " transactions)  clip: " << clip.name << "  chip: "
            << platform.mesh().rows() << 'x' << platform.mesh().cols() << '\n';

  if (!dot_file.empty()) {
    std::ofstream os(dot_file);
    ctg.to_dot(os);
    std::cout << "wrote task graph to " << dot_file << '\n';
  }

  const EasResult eas = schedule_eas(ctg, platform);
  const ValidationReport vr = validate_schedule(ctg, platform, eas.schedule);
  if (!vr.ok()) {
    std::cerr << "EAS schedule INVALID:\n" << vr.to_string();
    return 1;
  }

  std::cout << "\nEAS schedule: energy " << format_double(eas.energy.total(), 1)
            << " nJ (computation " << format_double(eas.energy.computation, 1)
            << ", communication " << format_double(eas.energy.communication, 1)
            << "), makespan " << makespan(eas.schedule) << " us, deadline misses "
            << eas.misses.miss_count << '\n';
  if (gantt) print_gantt(std::cout, ctg, platform, eas.schedule);

  if (show_edf) {
    const BaselineResult edf = schedule_edf(ctg, platform);
    std::cout << "EDF schedule: energy " << format_double(edf.energy.total(), 1)
              << " nJ, makespan " << makespan(edf.schedule) << " us, misses "
              << edf.misses.miss_count << '\n';
    std::cout << "EAS saves " << format_percent(1.0 - eas.energy.total() / edf.energy.total())
              << " energy vs EDF\n";
  }

  const SimReport sim = simulate_schedule(ctg, platform, eas.schedule);
  std::cout << "\nwormhole execution: makespan " << sim.makespan << " us, " << sim.packets
            << " packets, avg packet latency " << format_double(sim.avg_packet_latency, 1)
            << " cycles, simulated misses " << sim.misses.miss_count << '\n';
  return 0;
}
