// Reproduces Table 1 of the paper: the MP3/H263 A/V encoder application
// (24 tasks) scheduled on a heterogeneous 2x2 NoC for three clips.
//
// Paper (Table 1): EAS saves significant energy vs EDF on every clip
// (exact values unreadable in the source text; the savings column of the
// companion experiments is in the 35-50% range).
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/msb/msb.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Table 1 — A/V encoder application (24 tasks, 2x2 NoC)",
         "EAS vs EDF energy per clip; significant savings on every clip");

  const PeCatalog catalog = msb_catalog_2x2();
  const Platform platform = msb_platform_2x2();

  AsciiTable table({"MSB Task Set", "EAS Energy (nJ)", "EDF Energy (nJ)", "Energy Savings (%)",
                    "EAS misses", "EDF misses"});
  for (const ClipProfile& clip : all_clips()) {
    const TaskGraph ctg = make_av_encoder(clip, catalog);
    const RunRow eas = run_eas(ctg, platform, /*repair=*/true);
    const RunRow edf = run_edf(ctg, platform);
    const double savings = 1.0 - eas.energy.total() / edf.energy.total();
    table.add_row({clip.name, format_double(eas.energy.total(), 1),
                   format_double(edf.energy.total(), 1), format_double(savings * 100.0, 1),
                   std::to_string(eas.misses.miss_count), std::to_string(edf.misses.miss_count)});
  }
  emit(table);
  return 0;
}
