// Validation bench: executes EAS schedules on the flit-level wormhole
// simulator (src/sim) and reports how the self-timed execution compares to
// the conservative static tables.
//
// The paper's schedule tables reserve every link of a route for the whole
// transfer duration; the real wormhole network pipelines flits hop by hop,
// so the simulated per-packet arrival lags the reserved slot by at most the
// pipeline-fill time (O(hops) cycles) plus any arbitration noise — while
// tasks can also start *earlier* than the static tables because self-timed
// execution does not wait for reserved slots.  This bench quantifies both
// effects and confirms that no schedule deadlocks or loses deadlines when
// actually executed.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/sim/wormhole_sim.hpp"

using namespace noceas;
using namespace noceas::bench;

namespace {

void report(AsciiTable& table, const std::string& name, const TaskGraph& ctg,
            const Platform& platform) {
  const EasResult eas = schedule_eas(ctg, platform);
  SimOptions self_timed;
  self_timed.policy = ReleasePolicy::SelfTimed;
  SimOptions time_triggered;
  time_triggered.policy = ReleasePolicy::TimeTriggered;
  const SimReport st = simulate_schedule(ctg, platform, eas.schedule, self_timed);
  const SimReport tt = simulate_schedule(ctg, platform, eas.schedule, time_triggered);
  NOCEAS_REQUIRE(st.completed && tt.completed, "simulation did not complete for " << name);
  table.add_row({name, std::to_string(makespan(eas.schedule)), std::to_string(eas.misses.miss_count),
                 std::to_string(st.packets), std::to_string(st.makespan),
                 std::to_string(st.misses.miss_count), std::to_string(st.max_arrival_lag),
                 std::to_string(tt.makespan), std::to_string(tt.misses.miss_count),
                 std::to_string(tt.max_arrival_lag)});
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Validation — static schedule tables vs flit-level wormhole execution",
         "schedules stay deadlock-free and (near-)deadline-clean when executed");

  AsciiTable table({"workload", "static mkspan", "static miss", "packets", "ST mkspan",
                    "ST miss", "ST lag", "TT mkspan", "TT miss", "TT lag"});

  const PeCatalog msb3 = msb_catalog_3x3();
  const Platform p3 = msb_platform_3x3();
  for (const ClipProfile& clip : all_clips()) {
    report(table, "encdec/" + clip.name, make_av_encdec(clip, msb3), p3);
  }
  const PeCatalog msb2 = msb_catalog_2x2();
  const Platform p2 = msb_platform_2x2();
  report(table, "encoder/foreman", make_av_encoder(clip_foreman(), msb2), p2);
  report(table, "decoder/foreman", make_av_decoder(clip_foreman(), msb2), p2);

  const PeCatalog rnd = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform p4 = make_platform_for(rnd, 4, 4);
  for (int i = 0; i < 3; ++i) {
    report(table, "catI/" + std::to_string(i), generate_tgff_like(category_params(1, i), rnd),
           p4);
    report(table, "catII/" + std::to_string(i), generate_tgff_like(category_params(2, i), rnd),
           p4);
  }
  emit(table);

  // Same random workloads on a platform whose reservations include the
  // wormhole pipeline-fill guard band (library extension): time-triggered
  // execution should then track the tables with zero residual misses.
  std::cout << "\nWith pipeline-guarded reservations (extension):\n";
  const Platform p4g = make_mesh_platform(4, 4, rnd.tile_type_names(), /*link_bandwidth=*/64.0,
                                          RoutingAlgorithm::XY, EnergyParams{}, /*torus=*/false,
                                          /*pipeline_guard=*/true);
  AsciiTable guarded({"workload", "static mkspan", "static miss", "packets", "ST mkspan",
                      "ST miss", "ST lag", "TT mkspan", "TT miss", "TT lag"});
  for (int i = 0; i < 3; ++i) {
    report(guarded, "catI/" + std::to_string(i), generate_tgff_like(category_params(1, i), rnd),
           p4g);
    report(guarded, "catII/" + std::to_string(i), generate_tgff_like(category_params(2, i), rnd),
           p4g);
  }
  emit(guarded);
  return 0;
}
