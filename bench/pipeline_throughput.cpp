// Extension bench: pipelined multi-frame scheduling of the A/V encoder.
//
// The paper schedules one frame per run and derives the deadline from the
// frame rate.  With periodic unrolling (release/deadline shifted by the
// frame period, reconstructed reference frames feeding the next frame's
// motion estimation), the scheduler overlaps consecutive frames across the
// chip.  This bench sweeps the frame period downwards to find the highest
// sustainable frame rate of EAS and EDF on the 2x2 chip, and reports the
// energy-per-frame at each rate — the throughput face of the Fig. 7
// trade-off.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/ctg/unroll.hpp"
#include "src/msb/msb.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Extension — pipelined multi-frame encoder throughput (2x2 NoC)",
         "periodic unrolling sustains higher frame rates than the paper's "
         "single-frame formulation exposes; EAS stays cheaper than EDF");

  const PeCatalog catalog = msb_catalog_2x2();
  const Platform platform = msb_platform_2x2();
  const TaskGraph frame = make_av_encoder(clip_foreman(), catalog);
  constexpr int kFrames = 4;

  AsciiTable table({"fps", "period (us)", "EAS nJ/frame", "EAS misses", "EDF nJ/frame",
                    "EDF misses"});
  for (double fps = 40.0; fps <= 90.0 + 1e-9; fps += 10.0) {
    const Time period = static_cast<Time>(1e6 / fps);
    // Per-frame deadlines scale with the period; the unroll shifts them.
    const double ratio = static_cast<double>(kEncoderDeadline) / static_cast<double>(period);
    const TaskGraph scaled = make_av_encoder(clip_foreman(), catalog, ratio);
    UnrollOptions options;
    options.iterations = kFrames;
    options.period = period;
    options.cross_edges = encoder_cross_edges();
    const TaskGraph stream = unroll_periodic(scaled, options);

    const RunRow eas = run_eas(stream, platform, /*repair=*/true);
    const RunRow edf = run_edf(stream, platform);
    table.add_row({format_double(fps, 0), std::to_string(period),
                   format_double(eas.energy.total() / kFrames, 0),
                   std::to_string(eas.misses.miss_count),
                   format_double(edf.energy.total() / kFrames, 0),
                   std::to_string(edf.misses.miss_count)});
  }
  emit(table);
  std::cout << "\n(nonzero misses mark rates beyond the schedulable region)\n";
  return 0;
}
