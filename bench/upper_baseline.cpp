// Extension bench: how much does a big-budget global search improve on the
// paper's constructive heuristic?
//
// Simulated annealing over the (assignment, per-PE order) space — seeded
// with the EAS schedule and given thousands of full re-timings — bounds the
// quality gap of the fast heuristic from above.  The paper's pitch is
// "satisfactory solutions with reasonably short computation time"; this
// bench puts both halves of that claim on one table: the residual energy
// headroom and the runtime ratio.
#include <chrono>
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/opt/annealing.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Extension — simulated-annealing upper baseline vs EAS",
         "thousands of re-timings buy only single-digit-percent energy over "
         "the constructive heuristic, at orders of magnitude more runtime");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"workload", "EAS (nJ)", "EAS time", "SA best (nJ)", "SA gain", "SA misses",
                    "SA time"});
  auto run_row = [&](const std::string& name, const TaskGraph& g, const Platform& p,
                     int evaluations) {
    const EasResult eas = schedule_eas(g, p);
    AnnealOptions options;
    options.evaluations = evaluations;
    options.seed = 2026;
    const auto t0 = std::chrono::steady_clock::now();
    const AnnealResult sa = anneal_schedule(g, p, eas.schedule, options);
    const double sa_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    table.add_row({name, format_double(eas.energy.total(), 0), format_double(eas.seconds, 2) + "s",
                   format_double(sa.final_energy, 0),
                   format_percent(1.0 - sa.final_energy / eas.energy.total()),
                   std::to_string(sa.final_misses), format_double(sa_seconds, 2) + "s"});
  };

  for (int i = 0; i < 2; ++i) {
    // Moderate instances keep the SA budget meaningful within bench time.
    TgffParams params = category_params(1, i);
    params.num_tasks = 200;
    params.num_edges = 400;
    run_row("catI/" + std::to_string(i) + "/200t", generate_tgff_like(params, catalog), platform,
            8000);
    params = category_params(2, i);
    params.num_tasks = 200;
    params.num_edges = 400;
    run_row("catII/" + std::to_string(i) + "/200t", generate_tgff_like(params, catalog),
            platform, 8000);
  }
  const PeCatalog msb3 = msb_catalog_3x3();
  run_row("encdec/foreman", make_av_encdec(clip_foreman(), msb3), msb_platform_3x3(), 20000);
  emit(table);
  return 0;
}
