// Ablation (extension): energy polishing on top of EAS and EDF.
//
// Quantifies how much of the gap between EAS and the deadline-blind
// min-energy greedy floor the deadline-preserving polishing pass recovers,
// and how much an EDF schedule improves when polished — i.e. how far a
// purely local post-optimizer gets compared to scheduling energy-aware in
// the first place.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/baseline/greedy_energy.hpp"
#include "src/core/polish.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Ablation (extension) — deadline-preserving energy polishing",
         "polishing recovers most of EDF's waste on loose suites, but on the "
         "tight Category II EAS+polish stays clearly ahead of EDF+polish — "
         "energy-aware construction still matters under pressure");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"workload", "greedy floor", "EAS", "EAS+polish", "EDF", "EDF+polish",
                    "polish misses"});
  auto run_row = [&](const std::string& name, const TaskGraph& g, const Platform& p) {
    const BaselineResult greedy = schedule_greedy_energy(g, p);
    const RunRow eas = run_eas(g, p, /*repair=*/true);
    const RunRow edf = run_edf(g, p);
    const EasResult eas_full = schedule_eas(g, p);
    const BaselineResult edf_full = schedule_edf(g, p);
    const PolishResult pe = polish_energy(g, p, eas_full.schedule);
    const PolishResult pd = polish_energy(g, p, edf_full.schedule);
    table.add_row({name, format_double(greedy.energy.total(), 0),
                   format_double(eas.energy.total(), 0), format_double(pe.energy_after, 0),
                   format_double(edf.energy.total(), 0), format_double(pd.energy_after, 0),
                   std::to_string(deadline_misses(g, pe.schedule).miss_count +
                                  deadline_misses(g, pd.schedule).miss_count)});
  };

  for (int i = 0; i < 3; ++i) {
    run_row("catI/" + std::to_string(i), generate_tgff_like(category_params(1, i), catalog),
            platform);
    run_row("catII/" + std::to_string(i), generate_tgff_like(category_params(2, i), catalog),
            platform);
  }
  const PeCatalog msb3 = msb_catalog_3x3();
  const Platform p3 = msb_platform_3x3();
  run_row("encdec/foreman", make_av_encdec(clip_foreman(), msb3), p3);
  emit(table);
  return 0;
}
