// Ablation: the slack-budgeting weight function.
//
// The paper assigns each task the weight W = VAR_e * VAR_r ("the higher
// this weight, the higher the priority the task should have in selecting
// the PE") but does not compare against alternatives.  This bench runs the
// full EAS flow with every weight variant over both random categories and
// reports energy and residual misses, quantifying how much the specific
// choice matters.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Ablation — slack-budgeting weight function",
         "paper uses W = VAR_e * VAR_r; alternatives for comparison");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  const WeightKind kinds[] = {WeightKind::VarEVarR, WeightKind::VarE, WeightKind::VarR,
                              WeightKind::MeanTime, WeightKind::Uniform};

  AsciiTable table({"category", "weight", "total energy (nJ)", "vs VAR_e*VAR_r",
                    "total misses", "benchmarks with misses"});
  for (int category = 1; category <= 2; ++category) {
    double reference = 0.0;
    for (WeightKind kind : kinds) {
      double energy_sum = 0.0;
      std::size_t miss_sum = 0;
      int bench_with_misses = 0;
      for (int i = 0; i < 10; ++i) {
        const TaskGraph ctg = generate_tgff_like(category_params(category, i), catalog);
        EasOptions options;
        options.weight = kind;
        const RunRow row = run_eas(ctg, platform, /*repair=*/true, options);
        energy_sum += row.energy.total();
        miss_sum += row.misses.miss_count;
        if (row.misses.miss_count > 0) ++bench_with_misses;
      }
      if (kind == WeightKind::VarEVarR) reference = energy_sum;
      table.add_row({std::to_string(category), to_string(kind), format_double(energy_sum, 0),
                     overhead_percent(energy_sum, reference), std::to_string(miss_sum),
                     std::to_string(bench_with_misses)});
    }
  }
  emit(table);
  return 0;
}
