// Shared helpers of the experiment (table/figure reproduction) binaries.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the relevant schedulers on the relevant workloads, validates every
// schedule it reports, and prints the rows both as an aligned ASCII table
// and as CSV (between "--- csv ---" markers) for plotting.
#pragma once

#include <string>

#include "src/baseline/edf.hpp"
#include "src/core/eas.hpp"
#include "src/core/obs_export.hpp"
#include "src/core/validator.hpp"
#include "src/util/table.hpp"

namespace noceas::bench {

/// Parses the harness-wide flags shared by every bench binary:
///
///   --metrics-json DIR   write one obs::Registry JSON per scheduler run
///                        into DIR (created if missing), numbered in run
///                        order: DIR/NNN_<scheduler>.json
///
/// Unknown flags are a fatal usage error.  Call first in main().
void init(int argc, char** argv);

/// Value of --metrics-json; empty when per-run metrics are disabled.
[[nodiscard]] const std::string& metrics_dir();

/// Writes `registry` to "<metrics_dir()>/NNN_<slug>.json" (run-ordered
/// NNN); no-op when --metrics-json was not given.
void write_metrics_json(const obs::Registry& registry, const std::string& slug);

/// One scheduler outcome on one workload, validated.
struct RunRow {
  std::string scheduler;
  EnergyBreakdown energy;
  MissReport misses;
  Time makespan = 0;
  double avg_hops = 0.0;
  double seconds = 0.0;
};

/// Runs EAS (with or without search & repair) and validates the schedule.
[[nodiscard]] RunRow run_eas(const TaskGraph& g, const Platform& p, bool repair,
                             const EasOptions& base_options = {});

/// Runs the EDF baseline and validates the schedule.
[[nodiscard]] RunRow run_edf(const TaskGraph& g, const Platform& p);

/// Prints the standard experiment banner.
void banner(const std::string& experiment, const std::string& paper_claim);

/// Prints a table twice: human-readable and CSV.
void emit(const AsciiTable& table);

/// Ratio formatted as "+x.y%" (how much more energy `a` burns than `b`).
[[nodiscard]] std::string overhead_percent(Energy a, Energy b);

}  // namespace noceas::bench
