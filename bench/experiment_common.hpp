// Shared helpers of the experiment (table/figure reproduction) binaries.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the relevant schedulers on the relevant workloads, validates every
// schedule it reports, and prints the rows both as an aligned ASCII table
// and as CSV (between "--- csv ---" markers) for plotting.
#pragma once

#include <string>

#include "src/baseline/edf.hpp"
#include "src/core/eas.hpp"
#include "src/core/validator.hpp"
#include "src/util/table.hpp"

namespace noceas::bench {

/// One scheduler outcome on one workload, validated.
struct RunRow {
  std::string scheduler;
  EnergyBreakdown energy;
  MissReport misses;
  Time makespan = 0;
  double avg_hops = 0.0;
  double seconds = 0.0;
};

/// Runs EAS (with or without search & repair) and validates the schedule.
[[nodiscard]] RunRow run_eas(const TaskGraph& g, const Platform& p, bool repair,
                             const EasOptions& base_options = {});

/// Runs the EDF baseline and validates the schedule.
[[nodiscard]] RunRow run_edf(const TaskGraph& g, const Platform& p);

/// Prints the standard experiment banner.
void banner(const std::string& experiment, const std::string& paper_claim);

/// Prints a table twice: human-readable and CSV.
void emit(const AsciiTable& table);

/// Ratio formatted as "+x.y%" (how much more energy `a` burns than `b`).
[[nodiscard]] std::string overhead_percent(Energy a, Energy b);

}  // namespace noceas::bench
