// Extensions bench: the paper's future-work directions, made measurable.
//
// Sec. 7: "our algorithm can be adapted to other regular architectures with
// different network topologies or different deterministic routing schemes."
// This bench runs EAS and EDF on the Category I workloads over:
//   * 2-D mesh with XY routing (the paper's configuration),
//   * 2-D mesh with YX routing,
//   * torus (wrap-around mesh) with shortest dimension-order routing,
//   * the degree-3 honeycomb of Hemani et al. ([3] in the paper) — where
//     e(r_ij) is no longer determined by the Manhattan distance, exactly
//     the Sec. 7 caveat,
// and additionally quantifies the optional buffer-energy term E_Bbit that
// Eq. 1 deliberately drops.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"
#include "src/noc/graph_topology.hpp"

using namespace noceas;
using namespace noceas::bench;

namespace {

struct Config {
  const char* name;
  RoutingAlgorithm routing;
  bool torus;
  Energy e_bbit;
};

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Extensions — topologies, routing schemes, buffer energy",
         "future work of Sec. 7: other regular topologies / deterministic "
         "routing; E_Bbit ablation of Eq. 1");

  const Config configs[] = {
      {"mesh+XY (paper)", RoutingAlgorithm::XY, false, 0.0},
      {"mesh+YX", RoutingAlgorithm::YX, false, 0.0},
      {"torus+XY", RoutingAlgorithm::XY, true, 0.0},
      {"mesh+XY+E_Bbit", RoutingAlgorithm::XY, false, 0.9e-3},
  };

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);

  AsciiTable table({"configuration", "EAS energy (nJ)", "EDF energy (nJ)", "EDF vs EAS",
                    "EAS misses", "avg hops (EAS)"});
  auto honeycomb_platform = [&]() {
    const GraphTopology honey = make_honeycomb(4, 4);
    std::vector<PeDesc> pes;
    const auto names = catalog.tile_type_names();
    for (std::size_t t = 0; t < honey.num_tiles(); ++t) {
      pes.push_back(PeDesc{names[t] + "@" + honey.tile_name(PeId{t}), names[t]});
    }
    return Platform(honey, std::move(pes), EnergyParams{}, /*link_bandwidth=*/64.0);
  };

  auto run_config = [&](const std::string& label, const Platform& platform) {
    double eas_sum = 0.0, edf_sum = 0.0, hops_sum = 0.0;
    std::size_t miss_sum = 0;
    for (int i = 0; i < 5; ++i) {
      const TaskGraph ctg = generate_tgff_like(category_params(1, i), catalog);
      const RunRow eas = run_eas(ctg, platform, /*repair=*/true);
      const RunRow edf = run_edf(ctg, platform);
      eas_sum += eas.energy.total();
      edf_sum += edf.energy.total();
      hops_sum += eas.avg_hops;
      miss_sum += eas.misses.miss_count;
    }
    table.add_row({label, format_double(eas_sum, 0), format_double(edf_sum, 0),
                   overhead_percent(edf_sum, eas_sum), std::to_string(miss_sum),
                   format_double(hops_sum / 5.0, 2)});
  };

  for (const Config& cfg : configs) {
    EnergyParams energy;
    energy.e_bbit = cfg.e_bbit;
    const Platform platform = make_mesh_platform(4, 4, catalog.tile_type_names(),
                                                 /*link_bandwidth=*/64.0, cfg.routing, energy,
                                                 cfg.torus);
    run_config(cfg.name, platform);
  }
  run_config("honeycomb (Hemani [3])", honeycomb_platform());
  emit(table);
  return 0;
}
