// Ablation: the search & repair step (Step 3) and the slack budget (Step 1).
//
// Quantifies, over both random categories:
//   * EAS-base vs EAS: how many deadline misses Step 3 removes and at what
//     energy cost (paper: "EAS fixes all the deadline misses for all these
//     benchmarks with negligible increase in the energy consumption"),
//   * EAS without slack budgeting (budgets = plain effective deadlines):
//     what the proportional slack distribution is worth,
//   * the min-energy greedy scheduler: the energy floor and its (large)
//     deadline-miss cost, demonstrating why budgets are needed at all.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/baseline/greedy_energy.hpp"
#include "src/gen/tgff.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Ablation — search & repair and slack budgeting",
         "repair removes residual misses at negligible energy cost; "
         "without budgets, energy greed misses deadlines wholesale");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"category", "configuration", "total energy (nJ)", "vs EAS", "total misses",
                    "total tardiness"});
  for (int category = 1; category <= 2; ++category) {
    struct Acc {
      double energy = 0.0;
      std::size_t misses = 0;
      Time tardiness = 0;
    };
    Acc base, full, nobudget, greedy;
    for (int i = 0; i < 10; ++i) {
      const TaskGraph ctg = generate_tgff_like(category_params(category, i), catalog);

      const RunRow r_base = run_eas(ctg, platform, /*repair=*/false);
      base.energy += r_base.energy.total();
      base.misses += r_base.misses.miss_count;
      base.tardiness += r_base.misses.total_tardiness;

      const RunRow r_full = run_eas(ctg, platform, /*repair=*/true);
      full.energy += r_full.energy.total();
      full.misses += r_full.misses.miss_count;
      full.tardiness += r_full.misses.total_tardiness;

      EasOptions nb;
      nb.use_slack_budget = false;
      const RunRow r_nb = run_eas(ctg, platform, /*repair=*/true, nb);
      nobudget.energy += r_nb.energy.total();
      nobudget.misses += r_nb.misses.miss_count;
      nobudget.tardiness += r_nb.misses.total_tardiness;

      const BaselineResult r_greedy = schedule_greedy_energy(ctg, platform);
      greedy.energy += r_greedy.energy.total();
      greedy.misses += r_greedy.misses.miss_count;
      greedy.tardiness += r_greedy.misses.total_tardiness;
    }
    auto row = [&](const char* name, const Acc& acc) {
      table.add_row({std::to_string(category), name, format_double(acc.energy, 0),
                     overhead_percent(acc.energy, full.energy), std::to_string(acc.misses),
                     std::to_string(acc.tardiness)});
    };
    row("EAS-base (no repair)", base);
    row("EAS (full)", full);
    row("EAS w/o slack budget", nobudget);
    row("min-energy greedy", greedy);
  }
  emit(table);
  return 0;
}
