#include "bench/experiment_common.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace noceas::bench {

namespace {

void check_valid(const TaskGraph& g, const Platform& p, const Schedule& s, const char* who) {
  const ValidationReport vr = validate_schedule(g, p, s, {.check_deadlines = false});
  if (!vr.ok()) {
    std::cerr << "FATAL: " << who << " produced an invalid schedule:\n" << vr.to_string();
    std::exit(2);
  }
}

}  // namespace

RunRow run_eas(const TaskGraph& g, const Platform& p, bool repair, const EasOptions& base_options) {
  EasOptions options = base_options;
  options.repair = repair;
  const EasResult r = schedule_eas(g, p, options);
  check_valid(g, p, r.schedule, repair ? "EAS" : "EAS-base");
  return RunRow{repair ? "EAS" : "EAS-base", r.energy,     r.misses,
                makespan(r.schedule),        average_hops_per_packet(g, p, r.schedule),
                r.seconds};
}

RunRow run_edf(const TaskGraph& g, const Platform& p) {
  const BaselineResult r = schedule_edf(g, p);
  check_valid(g, p, r.schedule, "EDF");
  return RunRow{"EDF",        r.energy,
                r.misses,     makespan(r.schedule),
                average_hops_per_packet(g, p, r.schedule), r.seconds};
}

void banner(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << '\n'
            << "paper: " << paper_claim << '\n'
            << "================================================================\n";
}

void emit(const AsciiTable& table) {
  table.print(std::cout);
  std::cout << "--- csv ---\n";
  table.print_csv(std::cout);
  std::cout << "--- end csv ---\n";
}

std::string overhead_percent(Energy a, Energy b) {
  std::ostringstream os;
  const double pct = (a / b - 1.0) * 100.0;
  os << (pct >= 0 ? "+" : "") << format_double(pct, 1) << '%';
  return os.str();
}

}  // namespace noceas::bench
