#include "bench/experiment_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/util/log.hpp"

namespace noceas::bench {

namespace {

std::string g_metrics_dir;  // empty = per-run metrics disabled
int g_metrics_seq = 0;      // run-ordered file numbering

void check_valid(const TaskGraph& g, const Platform& p, const Schedule& s, const char* who) {
  const ValidationReport vr = validate_schedule(g, p, s, {.check_deadlines = false});
  if (!vr.ok()) {
    NOCEAS_ERROR(who << " produced an invalid schedule:\n" << vr.to_string());
    std::exit(2);
  }
}

}  // namespace

void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-json" && i + 1 < argc) {
      g_metrics_dir = argv[++i];
      std::filesystem::create_directories(g_metrics_dir);
    } else {
      std::cerr << "usage: " << argv[0] << " [--metrics-json DIR]\n"
                << "unknown argument '" << arg << "'\n";
      std::exit(2);
    }
  }
}

const std::string& metrics_dir() { return g_metrics_dir; }

void write_metrics_json(const obs::Registry& registry, const std::string& slug) {
  if (g_metrics_dir.empty()) return;
  char seq[8];
  std::snprintf(seq, sizeof(seq), "%03d", g_metrics_seq++);
  const std::string path = g_metrics_dir + "/" + seq + "_" + slug + ".json";
  std::ofstream os(path);
  if (!os.good()) {
    NOCEAS_ERROR("cannot write metrics JSON '" << path << '\'');
    std::exit(2);
  }
  registry.write_json(os);
}

RunRow run_eas(const TaskGraph& g, const Platform& p, bool repair, const EasOptions& base_options) {
  EasOptions options = base_options;
  options.repair = repair;
  obs::Registry registry;
  if (!metrics_dir().empty()) options.metrics = &registry;
  const EasResult r = schedule_eas(g, p, options);
  check_valid(g, p, r.schedule, repair ? "EAS" : "EAS-base");
  write_metrics_json(registry, repair ? "eas" : "eas_base");
  return RunRow{repair ? "EAS" : "EAS-base", r.energy,     r.misses,
                makespan(r.schedule),        average_hops_per_packet(g, p, r.schedule),
                r.seconds};
}

RunRow run_edf(const TaskGraph& g, const Platform& p) {
  BaselineObs obs;
  obs::Registry registry;
  if (!metrics_dir().empty()) obs.metrics = &registry;
  const BaselineResult r = schedule_edf(g, p, obs);
  check_valid(g, p, r.schedule, "EDF");
  write_metrics_json(registry, "edf");
  return RunRow{"EDF",        r.energy,
                r.misses,     makespan(r.schedule),
                average_hops_per_packet(g, p, r.schedule), r.seconds};
}

void banner(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << '\n'
            << "paper: " << paper_claim << '\n'
            << "================================================================\n";
}

void emit(const AsciiTable& table) {
  table.print(std::cout);
  std::cout << "--- csv ---\n";
  table.print_csv(std::cout);
  std::cout << "--- end csv ---\n";
}

std::string overhead_percent(Energy a, Energy b) {
  std::ostringstream os;
  const double pct = (a / b - 1.0) * 100.0;
  os << (pct >= 0 ? "+" : "") << format_double(pct, 1) << '%';
  return os.str();
}

}  // namespace noceas::bench
