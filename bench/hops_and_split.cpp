// Reproduces the in-text results of Sec. 6.2: "these energy savings are a
// combined effect of reducing both computation energy and communication
// energy.  For instance, with the movie clip foreman, the schedule
// generated using EAS successfully reduced the computation energy ...  In
// addition, it also reduces the communication energy ... by decreasing the
// average hops per packet from 2.55 to 1.35."
//
// We report the computation/communication energy split and the average
// router hops per data packet for EAS and EDF on the integrated MSB
// application, per clip, and cross-check the hop statistic against the
// flit-level simulator's per-packet accounting.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/msb/msb.hpp"
#include "src/sim/wormhole_sim.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Sec. 6.2 in-text — energy split and average hops per packet",
         "EAS reduces BOTH computation and communication energy; avg hops "
         "per packet drop (paper: 2.55 -> 1.35 for foreman)");

  const PeCatalog catalog = msb_catalog_3x3();
  const Platform platform = msb_platform_3x3();

  AsciiTable table({"clip", "scheduler", "comp (nJ)", "comm (nJ)", "total (nJ)", "avg hops",
                    "sim flit-hops"});
  for (const ClipProfile& clip : all_clips()) {
    const TaskGraph ctg = make_av_encdec(clip, catalog);
    const EasResult eas = schedule_eas(ctg, platform);
    const BaselineResult edf = schedule_edf(ctg, platform);
    const SimReport eas_sim = simulate_schedule(ctg, platform, eas.schedule);
    const SimReport edf_sim = simulate_schedule(ctg, platform, edf.schedule);
    table.add_row({clip.name, "EAS", format_double(eas.energy.computation, 1),
                   format_double(eas.energy.communication, 1),
                   format_double(eas.energy.total(), 1),
                   format_double(average_hops_per_packet(ctg, platform, eas.schedule), 2),
                   std::to_string(eas_sim.total_flit_hops)});
    table.add_row({clip.name, "EDF", format_double(edf.energy.computation, 1),
                   format_double(edf.energy.communication, 1),
                   format_double(edf.energy.total(), 1),
                   format_double(average_hops_per_packet(ctg, platform, edf.schedule), 2),
                   std::to_string(edf_sim.total_flit_hops)});
  }
  emit(table);
  return 0;
}
