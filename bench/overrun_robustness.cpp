// Extension bench: robustness of static schedules to execution-time
// overruns.
//
// The paper's schedules are built from profiled execution times; real runs
// deviate (data-dependent branches, cache effects).  This bench injects a
// uniform per-task overrun of up to X% into the wormhole simulator and
// counts how many deadlines each schedule actually loses, under both
// release policies.  Self-timed release absorbs overruns better (tasks
// slide instead of waiting for stale reserved slots); EAS schedules, which
// run closer to their deadlines than EDF's, degrade first — the price of
// energy optimization, quantified.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/sim/wormhole_sim.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Extension — deadline robustness under execution-time overruns",
         "simulated misses vs injected overrun, EAS vs EDF, self-timed vs "
         "time-triggered release");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"workload", "overrun", "EAS ST misses", "EAS TT misses", "EDF ST misses",
                    "EDF TT misses"});
  auto run_row = [&](const std::string& name, const TaskGraph& g, const Platform& p) {
    const EasResult eas = schedule_eas(g, p);
    const BaselineResult edf = schedule_edf(g, p);
    for (double overrun : {0.0, 0.05, 0.10, 0.20}) {
      std::size_t miss[4] = {0, 0, 0, 0};
      int col = 0;
      for (const Schedule* s : {&eas.schedule, &edf.schedule}) {
        for (ReleasePolicy policy : {ReleasePolicy::SelfTimed, ReleasePolicy::TimeTriggered}) {
          SimOptions options;
          options.policy = policy;
          options.exec_overrun = overrun;
          const SimReport sim = simulate_schedule(g, p, *s, options);
          miss[col++] = sim.misses.miss_count;
        }
      }
      table.add_row({name, format_percent(overrun, 0), std::to_string(miss[0]),
                     std::to_string(miss[1]), std::to_string(miss[2]),
                     std::to_string(miss[3])});
    }
  };

  run_row("catI/0", generate_tgff_like(category_params(1, 0), catalog), platform);
  run_row("catII/0", generate_tgff_like(category_params(2, 0), catalog), platform);
  const PeCatalog msb3 = msb_catalog_3x3();
  run_row("encdec/foreman", make_av_encdec(clip_foreman(), msb3), msb_platform_3x3());
  emit(table);
  return 0;
}
