// Robustness study: the headline Fig. 5/6 claim over many generator seeds.
//
// The paper reports single numbers (+55 % / +39 % EDF-vs-EAS energy) over
// ten fixed benchmarks per category.  This bench re-draws the random
// workloads with 30 fresh seeds per category (smaller instances to keep the
// sweep fast) and reports the distribution of the overhead and of the
// deadline-miss outcomes, showing that the reproduction does not hinge on
// the particular seeds used by fig5/fig6.
#include <iostream>
#include <vector>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"
#include "src/util/stats.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Robustness — EDF-vs-EAS energy overhead across 30 seeds/category",
         "the +55% / +39% style gaps are distributional, not seed luck");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"suite", "instances", "mean overhead", "stddev", "min", "max",
                    "EAS misses (total)", "EAS-base instances w/ misses"});
  auto sweep = [&](const std::string& label, int category, GraphShape shape, int instances) {
    std::vector<double> overheads;
    std::size_t eas_misses = 0;
    int base_missed = 0;
    for (int seed = 0; seed < instances; ++seed) {
      TgffParams params = category_params(category, seed % 10);
      params.shape = shape;
      params.num_tasks = 250;
      params.num_edges = 500;
      params.seed = 0xfeedu + static_cast<std::uint64_t>(category) * 31337u +
                    static_cast<std::uint64_t>(seed) * 7919u;
      const TaskGraph g = generate_tgff_like(params, catalog);
      const RunRow base = run_eas(g, platform, /*repair=*/false);
      const RunRow eas = run_eas(g, platform, /*repair=*/true);
      const RunRow edf = run_edf(g, platform);
      overheads.push_back(edf.energy.total() / eas.energy.total() - 1.0);
      eas_misses += eas.misses.miss_count;
      if (base.misses.miss_count > 0) ++base_missed;
    }
    const Summary s = summarize(overheads);
    table.add_row({label, std::to_string(overheads.size()), format_percent(s.mean),
                   format_percent(s.stddev), format_percent(s.min), format_percent(s.max),
                   std::to_string(eas_misses), std::to_string(base_missed)});
  };
  sweep("catI layered", 1, GraphShape::Layered, 30);
  sweep("catII layered", 2, GraphShape::Layered, 30);
  sweep("catI series-par", 1, GraphShape::SeriesParallel, 15);
  sweep("catII series-par", 2, GraphShape::SeriesParallel, 15);
  emit(table);
  return 0;
}
