// Reproduces Fig. 6 of the paper: energy consumption of EAS-base, EAS and
// EDF on the ten Category II random benchmarks — same scale as Category I
// but with tighter deadlines.
//
// Paper result: EDF consumes on average ~39% more energy than EAS (a
// smaller gap than Category I — tighter deadlines leave EAS less freedom to
// choose frugal PEs); EAS-base misses deadlines on benchmarks 0, 5 and 6,
// all repaired by EAS.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/gen/tgff.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Fig. 6 — Category II random benchmarks (4x4 NoC, tight deadlines)",
         "EDF consumes on average ~39% more energy than EAS; EAS repairs the "
         "EAS-base deadline misses");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"benchmark", "EAS-base (nJ)", "EAS (nJ)", "EDF (nJ)", "EDF vs EAS",
                    "EAS-base misses", "EAS misses", "EDF misses"});
  double overhead_sum = 0.0;
  int repaired = 0;
  for (int i = 0; i < 10; ++i) {
    const TaskGraph ctg = generate_tgff_like(category_params(2, i), catalog);
    const RunRow base = run_eas(ctg, platform, /*repair=*/false);
    const RunRow eas = run_eas(ctg, platform, /*repair=*/true);
    const RunRow edf = run_edf(ctg, platform);
    overhead_sum += edf.energy.total() / eas.energy.total() - 1.0;
    if (base.misses.miss_count > 0 && eas.misses.miss_count == 0) ++repaired;
    table.add_row({std::to_string(i), format_double(base.energy.total(), 0),
                   format_double(eas.energy.total(), 0), format_double(edf.energy.total(), 0),
                   overhead_percent(edf.energy.total(), eas.energy.total()),
                   std::to_string(base.misses.miss_count), std::to_string(eas.misses.miss_count),
                   std::to_string(edf.misses.miss_count)});
  }
  emit(table);
  std::cout << "\naverage EDF energy overhead vs EAS: "
            << format_percent(overhead_sum / 10.0) << " (paper: ~39%)\n"
            << "benchmarks where repair fixed EAS-base misses: " << repaired << '\n';
  return 0;
}
