// Reproduces the runtime observations of Sec. 6.1 with google-benchmark:
// "However, it does increase the run time of the scheduler.  For the
// aforementioned four benchmarks, the run time increase from 1.77 sec.,
// 2.45 sec., 3.23 sec. and 2.34 sec. to 2.17 sec., ..."
//
// We measure (a) EAS-base vs full EAS on the random benchmarks where
// search & repair actually fires (the Category II miss benchmarks), showing
// the same "repair costs extra runtime" effect, and (b) how scheduler
// runtime scales with task count.
// A second entry point, `runtime_scaling --obs-smoke`, asserts the two
// hard promises of the observability layer (docs/OBSERVABILITY.md): an
// attached tracer/registry — and separately an attached span-statistics
// profiler — leaves the schedule bit-identical, and its runtime overhead
// stays under 5% (best of adjacent plain/instrumented pairs).
// ci_sanitize.sh runs it as a smoke gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/baseline/edf.hpp"
#include "src/campaign/campaign.hpp"
#include "src/campaign/shard.hpp"
#include "src/core/eas.hpp"
#include "src/core/obs_export.hpp"
#include "src/gen/tgff.hpp"
#include "src/obs/profile.hpp"
#include "src/obs/telemetry.hpp"
#include "src/util/log.hpp"

using namespace noceas;

namespace {

const PeCatalog& catalog_4x4() {
  static const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  return catalog;
}

const Platform& platform_4x4() {
  static const Platform platform = make_platform_for(catalog_4x4(), 4, 4);
  return platform;
}

/// Category II benchmarks where EAS-base misses deadlines (repair fires).
const TaskGraph& miss_benchmark(int index) {
  static const TaskGraph b2 = generate_tgff_like(category_params(2, 2), catalog_4x4());
  static const TaskGraph b4 = generate_tgff_like(category_params(2, 4), catalog_4x4());
  static const TaskGraph b5 = generate_tgff_like(category_params(2, 5), catalog_4x4());
  static const TaskGraph b8 = generate_tgff_like(category_params(2, 8), catalog_4x4());
  switch (index) {
    case 0: return b2;
    case 1: return b4;
    case 2: return b5;
    default: return b8;
  }
}

/// One extra *unprofiled-timing-preserving* run after the timed loop: a
/// span-profiler spine (no event recording) is attached and every call
/// path's exclusive self time is exported as a "self_ms:<path>" counter.
/// tools/bench_compare.py stores these next to bench_ms and, when a
/// benchmark regresses, attributes the regression to the span whose self
/// time grew the most.  The timed loop itself stays uninstrumented.
void report_profile_counters(benchmark::State& state, const TaskGraph& g, EasOptions options) {
  obs::Profiler profiler;
  obs::TracerOptions spine_options;
  spine_options.record_events = false;
  spine_options.profiler = &profiler;
  obs::Tracer spine(spine_options);
  options.tracer = &spine;
  benchmark::DoNotOptimize(schedule_eas(g, platform_4x4(), options));
  for (const obs::ProfileRecord& r : profiler.snapshot().records) {
    if (r.self_ns <= 0) continue;
    state.counters["self_ms:" + r.path] = static_cast<double>(r.self_ns) / 1e6;
  }
}

void BM_EasBase_MissBenchmarks(benchmark::State& state) {
  const TaskGraph& g = miss_benchmark(static_cast<int>(state.range(0)));
  EasOptions options;
  options.repair = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_eas(g, platform_4x4(), options));
  }
  report_profile_counters(state, g, options);
}
BENCHMARK(BM_EasBase_MissBenchmarks)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_EasFull_MissBenchmarks(benchmark::State& state) {
  const TaskGraph& g = miss_benchmark(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_eas(g, platform_4x4()));
  }
  report_profile_counters(state, g, EasOptions{});
}
BENCHMARK(BM_EasFull_MissBenchmarks)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_Edf_MissBenchmarks(benchmark::State& state) {
  const TaskGraph& g = miss_benchmark(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_edf(g, platform_4x4()));
  }
}
BENCHMARK(BM_Edf_MissBenchmarks)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Attaches the probe-path instrumentation of the last run as counters.
/// The numbers are routed through the obs registry (export_probe_stats +
/// values()) — the same code path that produces the metrics JSON of the CLI
/// and the experiment benches — so every reporting surface agrees.
void report_probe_counters(benchmark::State& state, const ProbeStats& probe) {
  obs::Registry registry;
  export_probe_stats(probe, registry);
  for (const auto& [name, value] : registry.values()) {
    state.counters[name] = value;
  }
}

/// Same routing for the repair-phase instrumentation (repair.* counters).
void report_repair_counters(benchmark::State& state, const RepairStats& stats) {
  obs::Registry registry;
  export_repair_stats(stats, registry);
  for (const auto& [name, value] : registry.values()) {
    state.counters[name] = value;
  }
}

/// The canonical repair input: the attempt-0 level-based schedule of a miss
/// benchmark (deadlines missed, so search & repair has real work).
const Schedule& miss_base_schedule(int index) {
  static Schedule cache[4];
  static bool built[4] = {false, false, false, false};
  if (!built[index]) {
    EasOptions options;
    options.repair = false;
    cache[index] = schedule_eas(miss_benchmark(index), platform_4x4(), options).schedule;
    built[index] = true;
  }
  return cache[index];
}

/// Step 3 phase isolation: LTS moves only (order swaps, zero energy delta).
void BM_Repair_LtsOnly(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  const TaskGraph& g = miss_benchmark(index);
  const Schedule& base = miss_base_schedule(index);
  RepairOptions options;
  options.gtm = false;
  RepairStats last;
  for (auto _ : state) {
    RepairResult r = search_and_repair(g, platform_4x4(), base, options);
    last = r.stats;
    benchmark::DoNotOptimize(r);
  }
  report_repair_counters(state, last);
}
BENCHMARK(BM_Repair_LtsOnly)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Step 3 phase isolation: GTM moves only (migrations, energy-ordered).
void BM_Repair_GtmOnly(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  const TaskGraph& g = miss_benchmark(index);
  const Schedule& base = miss_base_schedule(index);
  RepairOptions options;
  options.lts = false;
  RepairStats last;
  for (auto _ : state) {
    RepairResult r = search_and_repair(g, platform_4x4(), base, options);
    last = r.stats;
    benchmark::DoNotOptimize(r);
  }
  report_repair_counters(state, last);
}
BENCHMARK(BM_Repair_GtmOnly)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// The repair inner loop's unit of work: one full timing reconstruction of
/// the incumbent plan (the cost every candidate paid before incremental
/// suffix evaluation).
void BM_Repair_RebuildOnly(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  const TaskGraph& g = miss_benchmark(index);
  const OrderedPlan plan = plan_from_schedule(miss_base_schedule(index), platform_4x4().num_pes());
  TimingRebuilder rb(g, platform_4x4());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rb.rebuild(plan));
  }
  state.counters["rebuild.commits"] =
      static_cast<double>(g.num_tasks()) * static_cast<double>(state.iterations());
}
BENCHMARK(BM_Repair_RebuildOnly)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Scaling with task count (fixed 4x4 platform, Category I style deadlines).
void BM_EasBase_TaskScaling(benchmark::State& state) {
  TgffParams params = category_params(1, 0);
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_edges = 2 * params.num_tasks;
  const TaskGraph g = generate_tgff_like(params, catalog_4x4());
  EasOptions options;
  options.repair = false;
  ProbeStats probe;
  for (auto _ : state) {
    EasResult r = schedule_eas(g, platform_4x4(), options);
    probe = r.probe;
    benchmark::DoNotOptimize(r);
  }
  report_probe_counters(state, probe);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EasBase_TaskScaling)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

/// Same workload with the probe cache and parallel evaluation disabled: the
/// seed's probe-everything-every-iteration behaviour, kept as the reference
/// for the cache's speedup (schedules are bit-identical either way).
void BM_EasBase_TaskScaling_NoCache(benchmark::State& state) {
  TgffParams params = category_params(1, 0);
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_edges = 2 * params.num_tasks;
  const TaskGraph g = generate_tgff_like(params, catalog_4x4());
  EasOptions options;
  options.repair = false;
  options.probe_cache = false;
  options.parallel_probes = false;
  ProbeStats probe;
  for (auto _ : state) {
    EasResult r = schedule_eas(g, platform_4x4(), options);
    probe = r.probe;
    benchmark::DoNotOptimize(r);
  }
  report_probe_counters(state, probe);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EasBase_TaskScaling_NoCache)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

/// Custom campaign app for the merge bench (mirrors the campaign tests).
campaign::AppSpec merge_bench_app(const std::string& name, std::size_t tasks) {
  campaign::AppSpec app;
  app.kind = campaign::AppSpec::Kind::Custom;
  app.custom_name = name;
  app.custom.num_tasks = tasks;
  app.custom.num_edges = tasks * 2;
  app.custom.avg_layer_width = 4.0;
  return app;
}

/// A 3-shard fleet of the 20-unit mini-campaign, run once per process
/// (setup, outside any timed loop).
const std::vector<std::string>& merge_bench_shards() {
  static const std::vector<std::string> dirs = [] {
    namespace fs = std::filesystem;
    const fs::path root = fs::temp_directory_path() / "noceas_bench_merge";
    fs::remove_all(root);
    std::vector<std::string> out;
    for (unsigned i = 0; i < 3; ++i) {
      campaign::CampaignSpec spec;
      spec.apps = {merge_bench_app("bench-a", 18), merge_bench_app("bench-b", 24)};
      spec.seeds = {1, 2, 3, 4, 5};
      spec.schedulers = {"edf", "greedy"};
      std::string name = "s";
      name += std::to_string(i);
      spec.out_dir = (root / name).string();
      spec.shard_index = i;
      spec.shard_count = 3;
      (void)campaign::run_campaign(spec);
      out.push_back(spec.out_dir);
    }
    return out;
  }();
  return dirs;
}

/// Fleet-merge throughput: parse + validate + reassemble + rewrite of the
/// deterministic artifacts from 3 shard directories.  Exports merged
/// units/sec ("units_per_s"), which tools/bench_compare.py records in the
/// perf baseline and trajectory — fleet-path regressions are caught like
/// scheduler regressions.
void BM_CampaignMerge(benchmark::State& state) {
  namespace fs = std::filesystem;
  campaign::MergeOptions options;
  options.shard_dirs = merge_bench_shards();
  const fs::path out = fs::temp_directory_path() / "noceas_bench_merge" / "merged";
  options.out_dir = out.string();
  std::size_t units = 0;
  for (auto _ : state) {
    fs::remove_all(out);
    const campaign::MergeReport report = campaign::merge_shards(options);
    units += report.units;
    benchmark::DoNotOptimize(report);
  }
  state.counters["units_per_s"] =
      benchmark::Counter(static_cast<double>(units), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignMerge)->Unit(benchmark::kMillisecond);

bool same_schedule(const TaskGraph& g, const Schedule& a, const Schedule& b) {
  for (TaskId t : g.all_tasks()) {
    const TaskPlacement &ta = a.at(t), &tb = b.at(t);
    if (ta.pe != tb.pe || ta.start != tb.start || ta.finish != tb.finish) return false;
  }
  for (EdgeId e : g.all_edges()) {
    const CommPlacement &ca = a.at(e), &cb = b.at(e);
    if (ca.src_pe != cb.src_pe || ca.dst_pe != cb.dst_pe || ca.start != cb.start ||
        ca.duration != cb.duration)
      return false;
  }
  return true;
}

/// Smoke gate for the observability layer: a full EAS run (repair fires on
/// this workload) with a tracer + registry attached — and separately with a
/// span-profiler spine attached — must produce the bit-identical schedule,
/// and the min-of-N runtime must stay within 5% of an *identically probing*
/// reference (force_eager_probes, no sinks).  Any attached sink selects the
/// eager probe path, so pricing sinks against the default lazy path would
/// measure that algorithmic difference, not emission cost; the lazy-vs-eager
/// delta is reported separately as information.  A fourth leg prices the
/// live-telemetry sampler: an ambient 250 ms TelemetryHub (no scheduler
/// sinks, so the lazy path stays selected) must leave the schedule
/// bit-identical and cost < 2% against the plain lazy reference.  Exits 0
/// on pass, 1 with a diagnostic on fail.
int obs_smoke() {
  const TaskGraph& g = miss_benchmark(0);
  const Platform& p = platform_4x4();

  // One timed sample = several back-to-back runs, so a transient host-load
  // spike is amortized instead of dominating a ~35 ms single run.
  constexpr int kRunsPerSample = 3;
  auto sample_seconds = [&](const EasOptions& options, Schedule* out) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRunsPerSample; ++i) {
      EasResult r = schedule_eas(g, p, options);
      if (out != nullptr && i == 0) *out = std::move(r.schedule);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  EasOptions eager_options;
  eager_options.force_eager_probes = true;

  obs::Tracer tracer;
  obs::Registry registry;
  EasOptions traced_options;
  traced_options.tracer = &tracer;
  traced_options.metrics = &registry;

  obs::Profiler profiler;
  obs::TracerOptions spine_options;
  spine_options.record_events = false;
  spine_options.profiler = &profiler;
  obs::Tracer spine(spine_options);
  EasOptions profiled_options;
  profiled_options.tracer = &spine;

  // The default (lazy-probing) schedule is the identity reference for every
  // instrumented leg, and its runtime gives the informational lazy-vs-eager
  // delta.
  Schedule plain_schedule;
  const double lazy = sample_seconds(EasOptions{}, &plain_schedule);

  // Run reference/instrumented samples as adjacent pairs (alternating which
  // goes first) and judge the *smallest* per-pair ratio: the quietest pair
  // the machine gave us.  Ambient load can only inflate a ratio's halves,
  // so a genuine instrumentation cost shows up even in the cleanest pair,
  // while a noisy CI host does not produce spurious failures the way a
  // min-of-each-side or median estimator does.
  constexpr int kPairs = 7;
  Schedule eager_schedule, traced_schedule, profiled_schedule;
  double eager = 1e300, traced = 1e300, prof = 1e300;
  double traced_best_ratio = 1e300, prof_best_ratio = 1e300;
  for (int i = 0; i < kPairs; ++i) {
    double e_s, t_s, f_s;
    if (i % 2 == 0) {
      e_s = sample_seconds(eager_options, i == 0 ? &eager_schedule : nullptr);
      t_s = sample_seconds(traced_options, i == 0 ? &traced_schedule : nullptr);
      f_s = sample_seconds(profiled_options, i == 0 ? &profiled_schedule : nullptr);
    } else {
      f_s = sample_seconds(profiled_options, nullptr);
      t_s = sample_seconds(traced_options, nullptr);
      e_s = sample_seconds(eager_options, nullptr);
    }
    eager = std::min(eager, e_s);
    traced = std::min(traced, t_s);
    prof = std::min(prof, f_s);
    traced_best_ratio = std::min(traced_best_ratio, t_s / e_s);
    prof_best_ratio = std::min(prof_best_ratio, f_s / e_s);
  }

  // Telemetry leg: an *ambient* sampler hub (250 ms period, in-memory
  // stream, its own registry) with no scheduler sinks attached — the lazy
  // probe path stays selected, so the reference is the plain lazy run.
  // Same adjacent-pair best-ratio estimator; the budget is tighter (2%)
  // because a sampler that wakes 4×/s has no business costing anything.
  std::ostringstream telemetry_sink;
  obs::Registry ambient_registry;
  Schedule telemetry_schedule;
  double tele = 1e300, tele_lazy = 1e300, tele_best_ratio = 1e300;
  for (int i = 0; i < kPairs; ++i) {
    double l_s = 0.0, m_s = 0.0;
    const auto telemetry_sample = [&] {
      obs::TelemetryOptions topt;
      topt.interval_ms = 250;
      topt.timeseries = &telemetry_sink;
      topt.registry = &ambient_registry;
      obs::TelemetryHub hub(topt);  // hub lifecycle billed to this leg
      m_s = sample_seconds(EasOptions{}, i == 0 ? &telemetry_schedule : nullptr);
      hub.stop();
    };
    if (i % 2 == 0) {
      l_s = sample_seconds(EasOptions{}, nullptr);
      telemetry_sample();
    } else {
      telemetry_sample();
      l_s = sample_seconds(EasOptions{}, nullptr);
    }
    tele_lazy = std::min(tele_lazy, l_s);
    tele = std::min(tele, m_s);
    tele_best_ratio = std::min(tele_best_ratio, m_s / l_s);
  }

  if (!same_schedule(g, plain_schedule, eager_schedule)) {
    NOCEAS_ERROR("obs-smoke FAIL: eager probing changed the schedule");
    return 1;
  }
  if (!same_schedule(g, plain_schedule, traced_schedule)) {
    NOCEAS_ERROR("obs-smoke FAIL: tracing changed the schedule");
    return 1;
  }
  if (!same_schedule(g, plain_schedule, profiled_schedule)) {
    NOCEAS_ERROR("obs-smoke FAIL: profiling changed the schedule");
    return 1;
  }
  if (!same_schedule(g, plain_schedule, telemetry_schedule)) {
    NOCEAS_ERROR("obs-smoke FAIL: ambient telemetry changed the schedule");
    return 1;
  }
  if (telemetry_sink.str().find("noceas.timeseries.v1") == std::string::npos) {
    NOCEAS_ERROR("obs-smoke FAIL: telemetry hub produced no timeseries stream");
    return 1;
  }
  if (tracer.size() == 0 || registry.values().empty()) {
    NOCEAS_ERROR("obs-smoke FAIL: sinks attached but nothing recorded");
    return 1;
  }

  const obs::ProfileSnapshot snap = profiler.snapshot(spine.now_ns());
  if (snap.records.empty()) {
    NOCEAS_ERROR("obs-smoke FAIL: profiler attached but no records");
    return 1;
  }
  // The self-time identity (docs/OBSERVABILITY.md): exclusive self times of
  // all call paths sum exactly to the root spans' total, which fits inside
  // the spine tracer's wall clock.
  if (snap.sum_self_ns() != snap.root_total_ns() || snap.root_total_ns() > snap.wall_ns) {
    NOCEAS_ERROR("obs-smoke FAIL: profile identity broken (self "
                 << snap.sum_self_ns() << ", root " << snap.root_total_ns() << ", wall "
                 << snap.wall_ns << ')');
    return 1;
  }

  std::printf("obs-smoke: schedules bit-identical (lazy / eager / traced / profiled); "
              "lazy-vs-eager delta %.2f%% (informational; lazy %.3f ms, eager %.3f ms)\n",
              100.0 * (eager / (lazy > 0 ? lazy : eager) - 1.0), 1e3 * lazy, 1e3 * eager);
  const double traced_overhead = traced_best_ratio - 1.0;
  std::printf("obs-smoke: tracer+metrics: %zu events; overhead %.2f%% "
              "(best of %d pairs; best eager sample %.3f ms, traced %.3f ms)\n",
              tracer.size(), 100.0 * traced_overhead, kPairs, 1e3 * eager, 1e3 * traced);
  const double prof_overhead = prof_best_ratio - 1.0;
  std::printf("obs-smoke: profiler: %zu call paths; overhead %.2f%% "
              "(best of %d pairs; best eager sample %.3f ms, profiled %.3f ms)\n",
              snap.records.size(), 100.0 * prof_overhead, kPairs, 1e3 * eager, 1e3 * prof);
  const double tele_overhead = tele_best_ratio - 1.0;
  std::printf("obs-smoke: telemetry: 250 ms sampler; overhead %.2f%% "
              "(best of %d pairs; best lazy sample %.3f ms, sampled %.3f ms)\n",
              100.0 * tele_overhead, kPairs, 1e3 * tele_lazy, 1e3 * tele);
  char fail[160];
  if (traced_overhead > 0.05) {
    std::snprintf(fail, sizeof(fail), "obs-smoke FAIL: tracer overhead %.2f%% exceeds the 5%% budget",
                  100.0 * traced_overhead);
    NOCEAS_ERROR(fail);
    return 1;
  }
  if (prof_overhead > 0.05) {
    std::snprintf(fail, sizeof(fail),
                  "obs-smoke FAIL: profiler overhead %.2f%% exceeds the 5%% budget",
                  100.0 * prof_overhead);
    NOCEAS_ERROR(fail);
    return 1;
  }
  if (tele_overhead > 0.02) {
    std::snprintf(fail, sizeof(fail),
                  "obs-smoke FAIL: telemetry overhead %.2f%% exceeds the 2%% budget",
                  100.0 * tele_overhead);
    NOCEAS_ERROR(fail);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--obs-smoke") return obs_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
