// Reproduces the runtime observations of Sec. 6.1 with google-benchmark:
// "However, it does increase the run time of the scheduler.  For the
// aforementioned four benchmarks, the run time increase from 1.77 sec.,
// 2.45 sec., 3.23 sec. and 2.34 sec. to 2.17 sec., ..."
//
// We measure (a) EAS-base vs full EAS on the random benchmarks where
// search & repair actually fires (the Category II miss benchmarks), showing
// the same "repair costs extra runtime" effect, and (b) how scheduler
// runtime scales with task count.
#include <benchmark/benchmark.h>

#include "src/baseline/edf.hpp"
#include "src/core/eas.hpp"
#include "src/gen/tgff.hpp"

using namespace noceas;

namespace {

const PeCatalog& catalog_4x4() {
  static const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  return catalog;
}

const Platform& platform_4x4() {
  static const Platform platform = make_platform_for(catalog_4x4(), 4, 4);
  return platform;
}

/// Category II benchmarks where EAS-base misses deadlines (repair fires).
const TaskGraph& miss_benchmark(int index) {
  static const TaskGraph b2 = generate_tgff_like(category_params(2, 2), catalog_4x4());
  static const TaskGraph b4 = generate_tgff_like(category_params(2, 4), catalog_4x4());
  static const TaskGraph b5 = generate_tgff_like(category_params(2, 5), catalog_4x4());
  static const TaskGraph b8 = generate_tgff_like(category_params(2, 8), catalog_4x4());
  switch (index) {
    case 0: return b2;
    case 1: return b4;
    case 2: return b5;
    default: return b8;
  }
}

void BM_EasBase_MissBenchmarks(benchmark::State& state) {
  const TaskGraph& g = miss_benchmark(static_cast<int>(state.range(0)));
  EasOptions options;
  options.repair = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_eas(g, platform_4x4(), options));
  }
}
BENCHMARK(BM_EasBase_MissBenchmarks)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_EasFull_MissBenchmarks(benchmark::State& state) {
  const TaskGraph& g = miss_benchmark(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_eas(g, platform_4x4()));
  }
}
BENCHMARK(BM_EasFull_MissBenchmarks)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_Edf_MissBenchmarks(benchmark::State& state) {
  const TaskGraph& g = miss_benchmark(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_edf(g, platform_4x4()));
  }
}
BENCHMARK(BM_Edf_MissBenchmarks)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Attaches the probe-path instrumentation of the last run as counters, so
/// the bench reports how much of the speedup the F(i,k) cache delivers.
void report_probe_counters(benchmark::State& state, const ProbeStats& probe) {
  state.counters["probes"] = static_cast<double>(probe.probes_issued);
  state.counters["cache_hits"] = static_cast<double>(probe.cache_hits);
  state.counters["invalidations"] = static_cast<double>(probe.invalidations);
  state.counters["hit_rate"] = probe.hit_rate();
  state.counters["par_batches"] = static_cast<double>(probe.parallel_batches);
  state.counters["max_batch"] = static_cast<double>(probe.max_batch);
}

/// Scaling with task count (fixed 4x4 platform, Category I style deadlines).
void BM_EasBase_TaskScaling(benchmark::State& state) {
  TgffParams params = category_params(1, 0);
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_edges = 2 * params.num_tasks;
  const TaskGraph g = generate_tgff_like(params, catalog_4x4());
  EasOptions options;
  options.repair = false;
  ProbeStats probe;
  for (auto _ : state) {
    EasResult r = schedule_eas(g, platform_4x4(), options);
    probe = r.probe;
    benchmark::DoNotOptimize(r);
  }
  report_probe_counters(state, probe);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EasBase_TaskScaling)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

/// Same workload with the probe cache and parallel evaluation disabled: the
/// seed's probe-everything-every-iteration behaviour, kept as the reference
/// for the cache's speedup (schedules are bit-identical either way).
void BM_EasBase_TaskScaling_NoCache(benchmark::State& state) {
  TgffParams params = category_params(1, 0);
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_edges = 2 * params.num_tasks;
  const TaskGraph g = generate_tgff_like(params, catalog_4x4());
  EasOptions options;
  options.repair = false;
  options.probe_cache = false;
  options.parallel_probes = false;
  ProbeStats probe;
  for (auto _ : state) {
    EasResult r = schedule_eas(g, platform_4x4(), options);
    probe = r.probe;
    benchmark::DoNotOptimize(r);
  }
  report_probe_counters(state, probe);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EasBase_TaskScaling_NoCache)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
