// Ablation: concurrent co-scheduling (EAS) vs the decoupled
// map-then-schedule flow ([13]-style, the authors' prior work).
//
// The paper motivates scheduling communication and computation *together*:
// "most previous work neglects the inter-processor communication aspects
// during the scheduling process ... considering communication effects is
// critical for NoC architectures".  This bench puts a number on it: a
// two-phase flow that first optimizes the Eq. 3 energy of the mapping
// (deadline-blind) and then list-schedules with the mapping fixed reaches
// similar energy — but at the cost of deadline violations the concurrent
// scheduler avoids.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/baseline/map_then_schedule.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"
#include "src/util/log.hpp"

using namespace noceas;
using namespace noceas::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Ablation — concurrent co-scheduling (EAS) vs map-then-schedule",
         "decoupling mapping from scheduling matches energy but loses "
         "deadlines; co-scheduling keeps both");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"workload", "flow", "energy (nJ)", "misses", "tardiness", "makespan"});
  auto run_pair = [&](const std::string& name, const TaskGraph& g, const Platform& p) {
    const RunRow eas = run_eas(g, p, /*repair=*/true);
    const MapScheduleResult two = schedule_map_then_list(g, p);
    const ValidationReport vr =
        validate_schedule(g, p, two.result.schedule, {.check_deadlines = false});
    if (!vr.ok()) {
      NOCEAS_ERROR("two-phase produced invalid schedule:\n" << vr.to_string());
      std::exit(2);
    }
    table.add_row({name, "EAS (concurrent)", format_double(eas.energy.total(), 0),
                   std::to_string(eas.misses.miss_count),
                   std::to_string(eas.misses.total_tardiness), std::to_string(eas.makespan)});
    table.add_row({name, "map-then-schedule", format_double(two.result.energy.total(), 0),
                   std::to_string(two.result.misses.miss_count),
                   std::to_string(two.result.misses.total_tardiness),
                   std::to_string(makespan(two.result.schedule))});
  };

  for (int i = 0; i < 4; ++i) {
    run_pair("catI/" + std::to_string(i), generate_tgff_like(category_params(1, i), catalog),
             platform);
    run_pair("catII/" + std::to_string(i), generate_tgff_like(category_params(2, i), catalog),
             platform);
  }
  const PeCatalog msb3 = msb_catalog_3x3();
  const Platform p3 = msb_platform_3x3();
  for (const ClipProfile& clip : all_clips()) {
    run_pair("encdec/" + clip.name, make_av_encdec(clip, msb3), p3);
  }
  emit(table);
  return 0;
}
