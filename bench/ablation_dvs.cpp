// Ablation: EAS + DVS slack reclamation (extension).
//
// The paper's related work contrasts heterogeneity-driven scheduling with
// DVS-based low-power scheduling ([5], [11]); the two compose.  This bench
// measures how much computation energy a classic slack-reclamation DVS
// post-pass recovers on top of EAS and on top of EDF, on the random suites
// and the integrated MSB system.  EDF has far more slack to reclaim (it
// races onto fast PEs and idles), but even after DVS it does not reach EAS:
// choosing the right heterogeneous PE beats slowing down the wrong one.
#include <iostream>

#include "bench/experiment_common.hpp"
#include "src/dvs/slack_reclaim.hpp"
#include "src/gen/tgff.hpp"
#include "src/msb/msb.hpp"

using namespace noceas;
using namespace noceas::bench;

namespace {

struct Row {
  Energy base_total = 0.0;
  Energy dvs_total = 0.0;
  std::size_t slowed = 0;
};

Row measure(const TaskGraph& g, const Platform& p, const Schedule& s, const EnergyBreakdown& eb) {
  const DvsResult r = reclaim_slack(g, p, s);
  Row row;
  row.base_total = eb.total();
  row.dvs_total = r.computation_after + eb.communication;
  row.slowed = r.slowed_tasks;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  banner("Ablation (extension) — DVS slack reclamation on top of EAS / EDF",
         "heterogeneity-aware placement and voltage scaling compose; EDF+DVS "
         "still trails EAS");

  const PeCatalog catalog = make_hetero_catalog(4, 4, /*seed=*/42);
  const Platform platform = make_platform_for(catalog, 4, 4);

  AsciiTable table({"workload", "scheduler", "energy (nJ)", "+DVS (nJ)", "DVS saves",
                    "slowed tasks"});
  auto emit_rows = [&](const std::string& name, const TaskGraph& g, const Platform& p) {
    const EasResult eas = schedule_eas(g, p);
    const BaselineResult edf = schedule_edf(g, p);
    const Row re = measure(g, p, eas.schedule, eas.energy);
    const Row rd = measure(g, p, edf.schedule, edf.energy);
    table.add_row({name, "EAS", format_double(re.base_total, 0), format_double(re.dvs_total, 0),
                   format_percent(1.0 - re.dvs_total / re.base_total),
                   std::to_string(re.slowed)});
    table.add_row({name, "EDF", format_double(rd.base_total, 0), format_double(rd.dvs_total, 0),
                   format_percent(1.0 - rd.dvs_total / rd.base_total),
                   std::to_string(rd.slowed)});
  };

  for (int i = 0; i < 3; ++i) {
    emit_rows("catI/" + std::to_string(i), generate_tgff_like(category_params(1, i), catalog),
              platform);
    emit_rows("catII/" + std::to_string(i), generate_tgff_like(category_params(2, i), catalog),
              platform);
  }
  const PeCatalog msb3 = msb_catalog_3x3();
  const Platform p3 = msb_platform_3x3();
  for (const ClipProfile& clip : all_clips()) {
    emit_rows("encdec/" + clip.name, make_av_encdec(clip, msb3), p3);
  }
  emit(table);
  return 0;
}
